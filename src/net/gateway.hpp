// net::GatewayServer — the ward-side collector behind the wire protocol.
//
// An N-reactor, non-blocking TCP server that terminates the WBSN link
// layer and maps every connection onto one service::FleetEngine session:
//
//   socket bytes -> FrameParser -> dispatch:
//     HELLO        open a fleet session (admission-controlled), HELLO_ACK
//     SAMPLE_CHUNK seq-checked, decoded, engine.offer() on the session's
//                  bounded ingest queue (integer path, no double copy)
//     FULL_BEAT    node-side verdict escalation: the window is re-classified
//                  with the gateway's own model, acked, and answered with a
//                  BEAT_VERDICT (at-least-once from the client; a duplicate
//                  seq is acked and re-verdicted from its own payload —
//                  deterministic, so bit-identical — but not re-counted,
//                  because the first verdict may have died with a previous
//                  connection and the client holds the upload until one
//                  arrives)
//     HEARTBEAT    ACK echo
//     BYE          graceful close: the session tail is flushed as verdicts,
//                  the send buffer drains, then the socket closes
//     MODEL_PUSH   first frame of a *control* connection (never mixed with
//                  a data session): announces a versioned ModelBundle that
//                  then streams in MODEL_PUSH_PART chunks. The reassembled
//                  image is digest-checked end-to-end, decoded, admitted
//                  into the BundleRegistry and — on success — hot-swapped
//                  into the live fleet (every session, or only arm B when
//                  an A/B split is enabled). Every outcome is answered
//                  with a MODEL_ACK carrying a ModelPushStatus; a NACKed
//                  push leaves the active model and all data traffic
//                  untouched.
//
// Reactor sharding: connections are distributed round-robin across
// `reactors` event loops (epoll(7) on Linux, poll(2) fallback — see
// EventPoller), each running on its own thread under serve(). Reactor r
// owns its connections outright — sockets, parsers, send buffers, the
// FULL_BEAT classify scratch — and pumps exactly FleetEngine shard r,
// where every one of its sessions is pinned (stable shard affinity at
// HELLO). One reactor step is: adopt handed-over connections, retry
// deferred ingest, wait for readiness, accept (reactor 0 only) + read +
// dispatch, one FleetEngine::pump_shard(r), flush writes, reap dead
// connections. Reactors never serialize on each other: the engine's
// in-order delivery phase is serial only *within* a shard.
//
// Verdict ordering is unchanged by the reactor count: a session's verdicts
// are produced by its own shard's serial delivery phase, so the frames
// appended to each connection's send buffer inherit the per-session dense
// sequence contract — and because each session's schedule is deterministic
// for any thread/shard/reactor count, the verdict byte stream a client
// receives is bit-identical to what direct in-process ingest of the same
// samples would produce (test_net_loopback, test_net_reactor and bench_net
// gate on exactly this).
//
// Backpressure is end-to-end and lossless on the ingest side: when a
// session's bounded queue defers part of a chunk (Block policy), the
// remainder parks in the connection and the socket is NOT read again until
// it drains — TCP flow control then pushes back on the node. On the egress
// side the send buffer is capped; a client that stops reading its verdicts
// is dropped rather than allowed to grow the gateway without bound.
//
// Protocol violations (CRC/magic/version failures, sequence gaps, oversized
// frames, a first frame that is neither HELLO nor MODEL_PUSH, control
// frames on a data connection or vice versa) tear the connection down and
// close its session without delivering the tail — the peer is untrusted
// from that point. Every such event is counted in GatewayStats.
//
// Idle behavior: a reactor whose step moved no frames backs its wait
// timeout off exponentially (5 ms up to ~320 ms, bounded by the idle
// eviction cadence), so an idle gateway burns no measurable CPU; any
// readiness event (or stop(), via the reactor's wake pipe) interrupts the
// wait immediately. Idle-expired waits are counted in
// GatewayStats::idle_wakeups.
//
// Threading: serve() runs one thread per reactor (the calling thread is
// reactor 0) and returns after stop(). poll_once() instead steps every
// reactor once on the calling thread — the single-threaded mode tests and
// step-driven drivers use; do not mix it with a live serve(). All
// cross-reactor state is explicitly synchronized: the per-node FULL_BEAT
// escalation map (a node may reconnect onto a different reactor) is
// mutex-guarded, handed-over sockets go through a per-reactor locked
// inbox, and GatewayStats counters are relaxed atomics so any thread may
// watch them — and stop() may be called from anywhere — while the loops
// run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "embedded/bundle.hpp"
#include "lifecycle/ab.hpp"
#include "lifecycle/registry.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/fleet.hpp"

namespace hbrp::net {

struct GatewayConfig {
  /// Listen port on 127.0.0.1 (0 = ephemeral; read back via port()).
  std::uint16_t port = 0;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 64;
  /// Per-connection cap on buffered outbound bytes; exceeding it drops the
  /// connection (a verdict stream cannot be shed without breaking the
  /// dense-sequence contract, so a non-reading client must go).
  std::size_t send_buffer_cap = 4u << 20;
  /// Drop a connection silent for longer than this (0 = disabled). The
  /// client's heartbeat interval must be comfortably shorter.
  int idle_timeout_ms = 0;
  /// Reactor (event-loop) threads. Connections are sharded round-robin
  /// across reactors and each reactor pumps its own FleetEngine shard
  /// (fleet.shards is forced to match, fleet.threads to 1 — the reactors
  /// themselves are the parallelism). 0 = one per hardware thread.
  std::size_t reactors = 1;
  /// listen(2) backlog; raise it for soak drivers ramping thousands of
  /// connections faster than the accept loop turns.
  int listen_backlog = 128;
  /// Inner engine configuration (admission, per-session queue/backpressure
  /// defaults). `shards` and `threads` are overridden as described above.
  service::FleetConfig fleet;
  /// Model registry bounds (version slots kept addressable for swap and
  /// rollback). The construction-time classifier is seeded as version
  /// `fleet.initial_model_version` and promoted active.
  lifecycle::RegistryConfig registry;
};

/// Relaxed-atomic counters, single-writer per field in steady state (the
/// reactor that owns the connection), readable from any thread while the
/// server runs.
struct GatewayStats {
  std::atomic<std::uint64_t> conns_accepted{0};
  std::atomic<std::uint64_t> conns_closed{0};
  std::atomic<std::uint64_t> conns_refused_capacity{0};
  std::atomic<std::uint64_t> conns_dropped_protocol{0};
  std::atomic<std::uint64_t> conns_dropped_overflow{0};
  std::atomic<std::uint64_t> conns_dropped_idle{0};
  std::atomic<std::uint64_t> bytes_rx{0};
  std::atomic<std::uint64_t> bytes_tx{0};
  std::atomic<std::uint64_t> frames_rx{0};
  std::atomic<std::uint64_t> frames_tx{0};
  std::atomic<std::uint64_t> frame_rejects{0};  ///< parser Corrupt events
  std::atomic<std::uint64_t> seq_rejects{0};    ///< chunk seq gap/reorder
  std::atomic<std::uint64_t> chunks_rx{0};
  std::atomic<std::uint64_t> samples_rx{0};
  std::atomic<std::uint64_t> full_beats_rx{0};
  std::atomic<std::uint64_t> full_beat_dups{0};
  /// FULL_BEATs whose node-side header says normal class + Good quality —
  /// the plain selective policy never uploads those, so each one is a
  /// drift-triggered novelty escalation. Deduped by a per-node seq
  /// high-water that (unlike the per-connection full_beats_rx guard)
  /// survives reconnects, so an escalation retransmitted after a
  /// connection kill is never double-counted in the fleet rollup.
  std::atomic<std::uint64_t> drift_escalations_rx{0};
  std::atomic<std::uint64_t> verdicts_tx{0};
  std::atomic<std::uint64_t> heartbeats_rx{0};
  /// Model lifecycle: MODEL_PUSH announces received, reassembly parts and
  /// bytes, accepted pushes (admitted + deployed) and refused ones (any
  /// non-Ok MODEL_ACK). A NACK is not a protocol drop: the control
  /// connection is answered and drained cleanly.
  std::atomic<std::uint64_t> model_pushes_rx{0};
  std::atomic<std::uint64_t> model_push_parts_rx{0};
  std::atomic<std::uint64_t> model_push_bytes_rx{0};
  std::atomic<std::uint64_t> model_pushes_ok{0};
  std::atomic<std::uint64_t> model_push_nacks{0};
  /// A/B assignment counters: sessions opened onto each arm since start
  /// (arm A also counts every session opened with the split disabled).
  std::atomic<std::uint64_t> ab_sessions_a{0};
  std::atomic<std::uint64_t> ab_sessions_b{0};
  /// serve()-loop iterations across all reactors, and the subset whose
  /// readiness wait expired without moving a single frame — the idle-burn
  /// metric the adaptive backoff exists to keep small.
  std::atomic<std::uint64_t> wakeups{0};
  std::atomic<std::uint64_t> idle_wakeups{0};

  std::string json() const;
};

class GatewayServer {
 public:
  /// Binds the listener immediately; throws hbrp::Error if the port is
  /// unavailable. `classifier` drives both the inner FleetEngine and the
  /// FULL_BEAT re-classification path.
  GatewayServer(embedded::EmbeddedClassifier classifier,
                GatewayConfig cfg = {});
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Steps every reactor once on the calling thread (reactor 0 gets
  /// `timeout_ms` for its readiness wait, the rest poll without blocking);
  /// returns the number of frames received + sent, so a driver can tell
  /// progress from idleness. Single-threaded mode — do not mix with a
  /// concurrently running serve().
  std::size_t poll_once(int timeout_ms);

  /// Runs the reactor loops — one thread per reactor, the caller drives
  /// reactor 0 — until stop() is called (from any thread).
  void serve();
  void stop();

  std::size_t connection_count() const {
    return open_conns_.load(std::memory_order_relaxed);
  }
  std::size_t reactor_count() const { return reactors_.size(); }
  const GatewayStats& stats() const { return stats_; }
  const service::FleetEngine& engine() const { return engine_; }
  /// Per-reactor counters (connections, frames, wakeups) as a JSON array.
  std::string reactors_json() const;

  // --- model lifecycle -----------------------------------------------------

  const lifecycle::BundleRegistry& registry() const { return registry_; }
  std::uint64_t active_model_version() const {
    return registry_.active_version();
  }

  /// Turns on deterministic A/B assignment: sessions HELLOing from now on
  /// land on arm split.arm(node_id); arm B starts on the current active
  /// model until a push replaces it. With the split enabled, an accepted
  /// MODEL_PUSH deploys to arm B only (the candidate) and is NOT promoted
  /// — promote_candidate() graduates it fleet-wide. Callable while the
  /// server runs (from any thread).
  void enable_ab(lifecycle::AbSplit split);
  void disable_ab();
  bool ab_enabled() const;

  /// Graduates the arm-B candidate: promotes its version in the registry
  /// and stages it onto every session (both arms). False when arm B runs
  /// the same version as the registry's active model (nothing to promote).
  bool promote_candidate();

  /// Reverts to the previously active version and stages it onto every
  /// session (both arms — a rollback is fleet-wide by definition). False
  /// when there is no rollback target.
  bool rollback_model();

 private:
  struct Conn;
  struct Reactor;

  void run_reactor(Reactor& r);
  std::size_t step_reactor(Reactor& r, int timeout_ms);
  void adopt_inbox(Reactor& r);
  void adopt_conn(Reactor& r, Socket s);
  void accept_pending();
  void read_conn(Conn& c);
  void dispatch(Conn& c, const FrameView& f);
  void on_hello(Conn& c, const FrameView& f);
  void on_sample_chunk(Conn& c, const FrameView& f);
  void on_full_beat(Conn& c, const FrameView& f);
  void on_model_push(Conn& c, const FrameView& f);
  void on_model_push_part(Conn& c, const FrameView& f);
  /// Answers the control connection with MODEL_ACK{status, version} and
  /// puts it into drain (one push per connection); counts ok/nack.
  void ack_push(Conn& c, ModelPushStatus status, std::uint64_t version);
  /// Digest-checks, decodes, admits and (on Ok) deploys the reassembled
  /// bundle image, then acks with the outcome.
  void finish_push(Conn& c);
  void offer_samples(Conn& c);
  void flush_conn(Conn& c);
  void enqueue_frame(Conn& c, FrameType type, std::uint64_t seq,
                     std::span<const unsigned char> payload);
  /// Tears the connection down. `deliver_tail` routes the session's final
  /// beats into the send buffer first (graceful Bye) — pointless on
  /// protocol errors where the socket is already untrusted/dead.
  void close_conn(Conn& c, bool deliver_tail);
  /// Unwatches + closes the socket and updates the gauges; the reaper
  /// frees the Conn at the end of the round.
  void finalize_close(Conn& c);

  embedded::EmbeddedClassifier classifier_;
  GatewayConfig cfg_;
  service::FleetEngine engine_;
  TcpListener listener_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::size_t next_reactor_ = 0;  ///< round-robin handoff; reactor 0 only
  /// Highest FULL_BEAT seq already counted as a drift escalation, per
  /// node_id. Unlike Conn::last_full_seq this survives reconnects: the
  /// client keeps its upload seq space across reconnects, so a
  /// retransmitted escalation arriving on a fresh connection — possibly
  /// on a *different reactor* — is still recognized and the fleet rollup
  /// is counted exactly once. Mutex-guarded for exactly that reason.
  std::mutex drift_mutex_;
  std::map<std::uint32_t, std::uint64_t> drift_counted_high_;
  /// Versioned model store (slots, promote/rollback); internally locked.
  lifecycle::BundleRegistry registry_;
  /// Guards the deployment targets below. Pushes and HELLOs may land on
  /// any reactor, and enable_ab()/rollback_model() on any thread; all of
  /// them only read/replace shared_ptr handles here — cold path.
  mutable std::mutex models_mutex_;
  /// Model new sessions start on, per A/B arm (both point at the active
  /// model until a split is enabled and a candidate pushed).
  std::shared_ptr<const service::SessionModel> arm_model_[2];
  lifecycle::AbSplit ab_;
  bool ab_on_ = false;
  GatewayStats stats_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> open_conns_{0};
};

}  // namespace hbrp::net
