// net::GatewayServer — the ward-side collector behind the wire protocol.
//
// A non-blocking, poll(2)-driven TCP server that terminates the WBSN link
// layer and maps every connection onto one service::FleetEngine session:
//
//   socket bytes -> FrameParser -> dispatch:
//     HELLO        open a fleet session (admission-controlled), HELLO_ACK
//     SAMPLE_CHUNK seq-checked, decoded, engine.offer() on the session's
//                  bounded ingest queue (integer path, no double copy)
//     FULL_BEAT    node-side verdict escalation: the window is re-classified
//                  with the gateway's own model, acked, and answered with a
//                  BEAT_VERDICT (at-least-once from the client; a duplicate
//                  seq is acked and re-verdicted from its own payload —
//                  deterministic, so bit-identical — but not re-counted,
//                  because the first verdict may have died with a previous
//                  connection and the client holds the upload until one
//                  arrives)
//     HEARTBEAT    ACK echo
//     BYE          graceful close: the session tail is flushed as verdicts,
//                  the send buffer drains, then the socket closes
//
// One poll_once() round is: retry deferred ingest, read + dispatch, one
// FleetEngine::pump(), flush writes, reap dead connections. Verdicts are
// produced by the engine's serial in-order delivery phase, so the frames
// appended to each connection's send buffer inherit the per-session dense
// sequence contract — and because the engine's schedule is deterministic
// for any thread/shard count, the verdict byte stream a client receives is
// bit-identical to what direct in-process ingest of the same samples would
// produce (test_net_loopback and bench_net gate on exactly this).
//
// Backpressure is end-to-end and lossless on the ingest side: when a
// session's bounded queue defers part of a chunk (Block policy), the
// remainder parks in the connection and the socket is NOT read again until
// it drains — TCP flow control then pushes back on the node. On the egress
// side the send buffer is capped; a client that stops reading its verdicts
// is dropped rather than allowed to grow the gateway without bound.
//
// Protocol violations (CRC/magic/version failures, sequence gaps, oversized
// frames, a first frame that is not HELLO) tear the connection down and
// close its session without delivering the tail — the peer is untrusted
// from that point. Every such event is counted in GatewayStats.
//
// Threading: the server is single-threaded (all sockets, the parser, the
// engine pump and the sinks run on the poll_once()/serve() caller).
// GatewayStats counters are relaxed atomics so another thread may watch
// them — and stop() may be called from anywhere — while the loop runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "embedded/bundle.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/fleet.hpp"

namespace hbrp::net {

struct GatewayConfig {
  /// Listen port on 127.0.0.1 (0 = ephemeral; read back via port()).
  std::uint16_t port = 0;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 64;
  /// Per-connection cap on buffered outbound bytes; exceeding it drops the
  /// connection (a verdict stream cannot be shed without breaking the
  /// dense-sequence contract, so a non-reading client must go).
  std::size_t send_buffer_cap = 4u << 20;
  /// Drop a connection silent for longer than this (0 = disabled). The
  /// client's heartbeat interval must be comfortably shorter.
  int idle_timeout_ms = 0;
  /// Inner engine configuration (threads, shards, admission, per-session
  /// queue/backpressure defaults).
  service::FleetConfig fleet;
};

/// Single-writer (the poll thread) relaxed-atomic counters, readable from
/// any thread while the server runs.
struct GatewayStats {
  std::atomic<std::uint64_t> conns_accepted{0};
  std::atomic<std::uint64_t> conns_closed{0};
  std::atomic<std::uint64_t> conns_refused_capacity{0};
  std::atomic<std::uint64_t> conns_dropped_protocol{0};
  std::atomic<std::uint64_t> conns_dropped_overflow{0};
  std::atomic<std::uint64_t> conns_dropped_idle{0};
  std::atomic<std::uint64_t> bytes_rx{0};
  std::atomic<std::uint64_t> bytes_tx{0};
  std::atomic<std::uint64_t> frames_rx{0};
  std::atomic<std::uint64_t> frames_tx{0};
  std::atomic<std::uint64_t> frame_rejects{0};  ///< parser Corrupt events
  std::atomic<std::uint64_t> seq_rejects{0};    ///< chunk seq gap/reorder
  std::atomic<std::uint64_t> chunks_rx{0};
  std::atomic<std::uint64_t> samples_rx{0};
  std::atomic<std::uint64_t> full_beats_rx{0};
  std::atomic<std::uint64_t> full_beat_dups{0};
  /// FULL_BEATs whose node-side header says normal class + Good quality —
  /// the plain selective policy never uploads those, so each one is a
  /// drift-triggered novelty escalation. Deduped by a per-node seq
  /// high-water that (unlike the per-connection full_beats_rx guard)
  /// survives reconnects, so an escalation retransmitted after a
  /// connection kill is never double-counted in the fleet rollup.
  std::atomic<std::uint64_t> drift_escalations_rx{0};
  std::atomic<std::uint64_t> verdicts_tx{0};
  std::atomic<std::uint64_t> heartbeats_rx{0};

  std::string json() const;
};

class GatewayServer {
 public:
  /// Binds the listener immediately; throws hbrp::Error if the port is
  /// unavailable. `classifier` drives both the inner FleetEngine and the
  /// FULL_BEAT re-classification path.
  GatewayServer(embedded::EmbeddedClassifier classifier,
                GatewayConfig cfg = {});
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// One scheduling round (see file header). `timeout_ms` bounds the
  /// poll(2) wait; returns the number of frames received + sent, so a
  /// driver can tell progress from idleness.
  std::size_t poll_once(int timeout_ms);

  /// poll_once(5) until stop() is called (from any thread).
  void serve();
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  std::size_t connection_count() const {
    return open_conns_.load(std::memory_order_relaxed);
  }
  const GatewayStats& stats() const { return stats_; }
  const service::FleetEngine& engine() const { return engine_; }

 private:
  struct Conn;

  void accept_pending();
  void read_conn(Conn& c);
  void dispatch(Conn& c, const FrameView& f);
  void on_hello(Conn& c, const FrameView& f);
  void on_sample_chunk(Conn& c, const FrameView& f);
  void on_full_beat(Conn& c, const FrameView& f);
  void offer_samples(Conn& c);
  void flush_conn(Conn& c);
  void enqueue_frame(Conn& c, FrameType type, std::uint64_t seq,
                     std::span<const unsigned char> payload);
  /// Tears the connection down. `deliver_tail` routes the session's final
  /// beats into the send buffer first (graceful Bye) — pointless on
  /// protocol errors where the socket is already untrusted/dead.
  void close_conn(Conn& c, bool deliver_tail);

  embedded::EmbeddedClassifier classifier_;
  embedded::ClassifyScratch full_beat_scratch_;
  GatewayConfig cfg_;
  service::FleetEngine engine_;
  TcpListener listener_;
  std::vector<std::unique_ptr<Conn>> conns_;
  /// Highest FULL_BEAT seq already counted as a drift escalation, per
  /// node_id. Unlike Conn::last_full_seq this survives reconnects: the
  /// client keeps its upload seq space across reconnects, so a
  /// retransmitted escalation arriving on a fresh connection is still
  /// recognized and the fleet rollup is counted exactly once. (Poll-thread
  /// only, like Conn state.)
  std::map<std::uint32_t, std::uint64_t> drift_counted_high_;
  GatewayStats stats_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> open_conns_{0};
};

}  // namespace hbrp::net
