// Thin RAII layer over POSIX non-blocking TCP sockets.
//
// Everything src/net needs from the OS, and nothing more: an owning fd
// wrapper, a loopback listener with ephemeral-port support, a non-blocking
// connect, and send/recv shims that normalize the errno zoo into a small
// IoResult (would-block / eof / error) so the gateway and client state
// machines never touch errno directly. All sockets are created
// non-blocking and with SIGPIPE suppressed (MSG_NOSIGNAL): a peer that
// vanishes mid-write surfaces as IoResult.error, never a process signal.
//
// Loopback-only by design: the gateway binds 127.0.0.1, matching the
// deployment story (the radio link terminates at a border router on the
// gateway host) and keeping the test/bench surface hermetic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace hbrp::net {

/// Owning file-descriptor wrapper (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

/// Outcome of one non-blocking send/recv attempt. Exactly one of the
/// flags is set when n == 0; n > 0 always means plain progress.
struct IoResult {
  std::size_t n = 0;
  bool would_block = false;
  bool eof = false;    ///< recv only: orderly shutdown by the peer
  bool error = false;  ///< connection is dead; close it
};

IoResult send_some(int fd, std::span<const unsigned char> bytes);
IoResult recv_some(int fd, std::span<unsigned char> into);

/// Non-blocking loopback listener. Construct, then accept() from a poll
/// loop; port() reports the bound port (useful with port 0 = ephemeral).
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:port. Throws hbrp::Error on failure.
  explicit TcpListener(std::uint16_t port, int backlog = 64);

  /// Accepts one pending connection (already non-blocking, TCP_NODELAY);
  /// an invalid Socket when none is pending.
  Socket accept();

  std::uint16_t port() const { return port_; }
  int fd() const { return listener_.fd(); }

 private:
  Socket listener_;
  std::uint16_t port_ = 0;
};

/// Starts a non-blocking connect to 127.0.0.1:port. The socket is usually
/// still connecting on return — poll for writability, then check
/// connect_finished(). Invalid Socket only on immediate local failure.
Socket connect_loopback(std::uint16_t port);

/// After writability: true if the connect succeeded, false if it failed
/// (the socket should be closed and retried with backoff).
bool connect_finished(int fd);

/// One readiness event out of EventPoller::wait().
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// POLLERR/POLLNVAL/EPOLLERR, or POLLHUP/EPOLLHUP: the fd is dead or the
  /// peer is gone — a reactor should read (to drain the EOF) or close.
  bool broken = false;
};

/// Level-triggered readiness multiplexer: epoll(7) on Linux, a poll(2)
/// fallback elsewhere — and on Linux too when HBRP_NET_POLL=1 is set, so
/// both backends stay gated by the same tests on one host. The backend is
/// chosen once at construction.
///
/// Single-owner, like everything in a reactor: one thread constructs it,
/// watches fds, and waits. The O(watched) interest rebuild of the poll
/// fallback is the thing epoll removes at high session counts; the API is
/// the intersection of the two so a reactor never branches on backend.
class EventPoller {
 public:
  EventPoller();
  ~EventPoller();
  EventPoller(const EventPoller&) = delete;
  EventPoller& operator=(const EventPoller&) = delete;

  /// Declares (or updates) level-triggered interest in `fd`. With both
  /// flags false the fd is dropped from the set (same as unwatch()).
  void watch(int fd, bool read, bool write);
  void unwatch(int fd);

  /// Blocks up to `timeout_ms` (0 = poll and return, <0 = wait forever);
  /// clears and fills `out`; returns out.size(). Spurious empty returns
  /// are normal (timeout, EINTR).
  std::size_t wait(int timeout_ms, std::vector<PollEvent>& out);

  std::size_t watched() const { return interest_.size(); }
  const char* backend() const { return epfd_ >= 0 ? "epoll" : "poll"; }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };
  std::map<int, Interest> interest_;
  int epfd_ = -1;  ///< -1 = poll(2) fallback
};

/// Self-pipe wakeup for reactor threads: any thread may notify(), the
/// owning reactor watches fd() for readability and drains pending tokens
/// with consume(). Lossy by design (a byte per notify, drained in bulk).
class WakePipe {
 public:
  WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  int fd() const { return read_end_.fd(); }
  /// Async-signal-safe, callable from any thread.
  void notify();
  /// Drains every pending wake token (reactor thread only).
  void consume();

 private:
  Socket read_end_;
  Socket write_end_;
};

}  // namespace hbrp::net
