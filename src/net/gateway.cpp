#include "net/gateway.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "lifecycle/bundle.hpp"
#include "math/check.hpp"

namespace hbrp::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Adaptive reactor backoff: a step that moves frames resets the wait to
/// the base; every fruitless step doubles it up to the cap. Any readiness
/// event (or a wake-pipe notify) still interrupts the wait immediately, so
/// the cap costs nothing in latency for socket-driven work.
constexpr int kBaseWaitMs = 5;
constexpr int kMaxWaitMs = 320;

void append_field(std::string& out, const char* key, std::uint64_t v,
                  bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(v);
}

GatewayConfig sanitize_config(GatewayConfig cfg) {
  // The wire contract is lossless ingest: a chunk the session queue cannot
  // take is parked on the connection and retried, with TCP flow control
  // pushing back on the node. That only composes with the Block policy —
  // Reject/DropOldest would silently shed samples the node believes were
  // delivered.
  cfg.fleet.session.backpressure = service::BackpressurePolicy::Block;
  if (cfg.reactors == 0)
    cfg.reactors = std::max(1u, std::thread::hardware_concurrency());
  // Reactor r owns engine shard r outright — every session it opens is
  // pinned there and only it calls pump_shard(r), so sinks always run on
  // the reactor that owns the connection they write to. The engine's own
  // executor is never used by the gateway (reactor threads ARE the
  // parallelism), so it stays at one thread.
  cfg.fleet.shards = cfg.reactors;
  cfg.fleet.threads = 1;
  if (cfg.listen_backlog < 1) cfg.listen_backlog = 1;
  return cfg;
}

}  // namespace

std::string GatewayStats::json() const {
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  std::string out = "{";
  append_field(out, "schema_version", service::kTelemetrySchemaVersion,
               /*first=*/true);
  append_field(out, "conns_accepted", load(conns_accepted));
  append_field(out, "conns_closed", load(conns_closed));
  append_field(out, "conns_refused_capacity", load(conns_refused_capacity));
  append_field(out, "conns_dropped_protocol", load(conns_dropped_protocol));
  append_field(out, "conns_dropped_overflow", load(conns_dropped_overflow));
  append_field(out, "conns_dropped_idle", load(conns_dropped_idle));
  append_field(out, "bytes_rx", load(bytes_rx));
  append_field(out, "bytes_tx", load(bytes_tx));
  append_field(out, "frames_rx", load(frames_rx));
  append_field(out, "frames_tx", load(frames_tx));
  append_field(out, "frame_rejects", load(frame_rejects));
  append_field(out, "seq_rejects", load(seq_rejects));
  append_field(out, "chunks_rx", load(chunks_rx));
  append_field(out, "samples_rx", load(samples_rx));
  append_field(out, "full_beats_rx", load(full_beats_rx));
  append_field(out, "full_beat_dups", load(full_beat_dups));
  append_field(out, "drift_escalations_rx", load(drift_escalations_rx));
  append_field(out, "verdicts_tx", load(verdicts_tx));
  append_field(out, "heartbeats_rx", load(heartbeats_rx));
  append_field(out, "model_pushes_rx", load(model_pushes_rx));
  append_field(out, "model_push_parts_rx", load(model_push_parts_rx));
  append_field(out, "model_push_bytes_rx", load(model_push_bytes_rx));
  append_field(out, "model_pushes_ok", load(model_pushes_ok));
  append_field(out, "model_push_nacks", load(model_push_nacks));
  append_field(out, "ab_sessions_a", load(ab_sessions_a));
  append_field(out, "ab_sessions_b", load(ab_sessions_b));
  append_field(out, "wakeups", load(wakeups));
  append_field(out, "idle_wakeups", load(idle_wakeups));
  out += "}";
  return out;
}

struct GatewayServer::Conn {
  Reactor* owner = nullptr;
  Socket sock;
  FrameParser parser;
  std::vector<unsigned char> out;
  std::size_t out_head = 0;
  std::optional<service::SessionId> session;
  TxPolicy policy = TxPolicy::StreamEverything;
  std::uint32_t node_id = 0;
  bool hello_done = false;
  bool draining = false;  ///< flush `out`, then close
  bool alive = true;
  bool accept_verdicts = false;
  bool overflowed = false;
  std::uint64_t next_chunk_seq = 0;
  std::optional<std::uint64_t> last_full_seq;
  /// Control-connection (MODEL_PUSH) reassembly state. `ctrl` flips on the
  /// announce frame and is mutually exclusive with hello_done: a pusher
  /// never carries data traffic and vice versa.
  bool ctrl = false;
  std::uint64_t push_version = 0;
  std::uint64_t push_digest = 0;
  std::uint64_t push_total = 0;
  std::uint32_t push_parts = 0;
  std::uint32_t push_next_part = 0;
  std::uint32_t push_chunk = 0;
  std::vector<unsigned char> push_buf;
  /// Decoded samples the session queue has not accepted yet (Block
  /// backpressure); while non-empty the socket is not read.
  std::vector<dsp::Sample> inbound;
  std::vector<dsp::Sample> window_scratch;
  Clock::time_point last_rx;
};

/// One event loop. Everything here is owned by the one thread running the
/// loop (or, in poll_once() mode, by the single calling thread) — except
/// the locked handoff inbox, the wake pipe, and the stats atomics.
struct GatewayServer::Reactor {
  std::size_t index = 0;
  EventPoller poller;
  WakePipe wake;
  std::mutex inbox_mutex;
  std::vector<Socket> inbox;  ///< connections handed over by reactor 0
  std::vector<std::unique_ptr<Conn>> conns;
  std::unordered_map<int, Conn*> by_fd;
  embedded::ClassifyScratch full_beat_scratch;
  std::vector<PollEvent> events;
  // Per-reactor rollup, single-writer (the loop), read by reactors_json().
  std::atomic<std::uint64_t> frames_rx{0};
  std::atomic<std::uint64_t> frames_tx{0};
  std::atomic<std::uint64_t> wakeups{0};
  std::atomic<std::uint64_t> idle_wakeups{0};
  std::atomic<std::uint64_t> conns_open{0};
};

GatewayServer::GatewayServer(embedded::EmbeddedClassifier classifier,
                             GatewayConfig cfg)
    : classifier_(std::move(classifier)),
      cfg_(sanitize_config(std::move(cfg))),
      engine_(classifier_, cfg_.fleet),
      listener_(cfg_.port, cfg_.listen_backlog),
      registry_(cfg_.registry) {
  reactors_.reserve(cfg_.reactors);
  for (std::size_t i = 0; i < cfg_.reactors; ++i) {
    reactors_.push_back(std::make_unique<Reactor>());
    reactors_.back()->index = i;
  }
  // Seed the registry with the construction-time classifier so pushes have
  // an incumbent to compare against (geometry, downgrade) and rollback has
  // a floor. Unlike the engine's internal default model this one carries
  // the fleet-default drift seeds: sessions opened through HELLO route
  // their seeds through the model from day one.
  auto initial = std::make_shared<const service::SessionModel>(
      service::SessionModel{cfg_.fleet.initial_model_version, classifier_,
                            cfg_.fleet.session.drift_centroids});
  const auto admitted = registry_.admit(initial, /*digest=*/0);
  HBRP_REQUIRE(admitted == lifecycle::AdmitResult::Ok,
               "GatewayServer: initial model admission failed");
  registry_.promote(initial->version);
  arm_model_[0] = initial;
  arm_model_[1] = std::move(initial);
}

GatewayServer::~GatewayServer() {
  // Abrupt teardown: no tails, no flushes. The engine's destructor closes
  // the remaining sessions with their sinks disabled, so the Conn pointers
  // captured there are never dereferenced.
  for (auto& r : reactors_) {
    for (auto& c : r->conns) {
      c->accept_verdicts = false;
      c->alive = false;
      c->sock.close();
    }
  }
}

std::string GatewayServer::reactors_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < reactors_.size(); ++i) {
    const Reactor& r = *reactors_[i];
    out += i == 0 ? "{" : ", {";
    append_field(out, "reactor", i, /*first=*/true);
    out += ", \"backend\": \"";
    out += r.poller.backend();
    out += '"';
    append_field(out, "conns_open",
                 r.conns_open.load(std::memory_order_relaxed));
    append_field(out, "frames_rx",
                 r.frames_rx.load(std::memory_order_relaxed));
    append_field(out, "frames_tx",
                 r.frames_tx.load(std::memory_order_relaxed));
    append_field(out, "wakeups", r.wakeups.load(std::memory_order_relaxed));
    append_field(out, "idle_wakeups",
                 r.idle_wakeups.load(std::memory_order_relaxed));
    out += "}";
  }
  out += "]";
  return out;
}

void GatewayServer::enqueue_frame(Conn& c, FrameType type, std::uint64_t seq,
                                  std::span<const unsigned char> payload) {
  if (!c.alive) return;
  append_frame(c.out, type, seq, payload);
  stats_.frames_tx.fetch_add(1, std::memory_order_relaxed);
  c.owner->frames_tx.fetch_add(1, std::memory_order_relaxed);
  if (c.out.size() - c.out_head > cfg_.send_buffer_cap) c.overflowed = true;
}

void GatewayServer::finalize_close(Conn& c) {
  c.alive = false;
  c.owner->poller.unwatch(c.sock.fd());
  c.owner->by_fd.erase(c.sock.fd());
  c.sock.close();
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  stats_.conns_closed.fetch_add(1, std::memory_order_relaxed);
  c.owner->conns_open.fetch_sub(1, std::memory_order_relaxed);
}

void GatewayServer::close_conn(Conn& c, bool deliver_tail) {
  if (!c.alive) return;
  if (c.session.has_value()) {
    c.accept_verdicts = deliver_tail;
    engine_.close_session(*c.session);
    c.session.reset();
    c.accept_verdicts = false;
  }
  if (deliver_tail) {
    // Stay alive until the send buffer (now holding the session tail)
    // drains; the flush phase finalizes the close.
    c.draining = true;
    return;
  }
  finalize_close(c);
}

void GatewayServer::adopt_conn(Reactor& r, Socket s) {
  auto c = std::make_unique<Conn>();
  c->owner = &r;
  c->sock = std::move(s);
  c->last_rx = Clock::now();
  r.by_fd.emplace(c->sock.fd(), c.get());
  r.conns.push_back(std::move(c));
  r.conns_open.fetch_add(1, std::memory_order_relaxed);
}

void GatewayServer::adopt_inbox(Reactor& r) {
  std::vector<Socket> handed;
  {
    const std::lock_guard<std::mutex> lock(r.inbox_mutex);
    handed.swap(r.inbox);
  }
  for (Socket& s : handed) adopt_conn(r, std::move(s));
}

void GatewayServer::accept_pending() {
  while (true) {
    Socket s = listener_.accept();
    if (!s.valid()) return;
    if (connection_count() >= cfg_.max_connections) {
      stats_.conns_refused_capacity.fetch_add(1, std::memory_order_relaxed);
      continue;  // Socket destructor closes the refused connection
    }
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    stats_.conns_accepted.fetch_add(1, std::memory_order_relaxed);
    const std::size_t target = next_reactor_;
    next_reactor_ = (next_reactor_ + 1) % reactors_.size();
    if (target == 0) {
      adopt_conn(*reactors_[0], std::move(s));
    } else {
      Reactor& r = *reactors_[target];
      {
        const std::lock_guard<std::mutex> lock(r.inbox_mutex);
        r.inbox.push_back(std::move(s));
      }
      r.wake.notify();
    }
  }
}

void GatewayServer::on_hello(Conn& c, const FrameView& f) {
  const auto hello = decode_hello(f.payload);
  if (c.hello_done || c.ctrl || !hello.has_value()) {
    stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
    close_conn(c, false);
    return;
  }
  c.hello_done = true;
  c.policy = hello->policy;
  c.node_id = hello->node_id;
  HelloAckMsg ack;
  const std::size_t expected = classifier_.projector().expected_window();
  if (hello->policy == TxPolicy::Selective && hello->window != expected) {
    ack.status = HelloStatus::BadWindow;
  } else {
    Conn* cp = &c;  // stable: the reactor's conns vector holds unique_ptrs
    // A/B arm assignment: a pure function of (split, node_id), resolved
    // once at HELLO. The session starts on its arm's current deployment
    // target and carries the arm tag for stage_swap_arm().
    service::SessionConfig scfg = cfg_.fleet.session;
    {
      const std::lock_guard<std::mutex> lock(models_mutex_);
      scfg.ab_arm = ab_on_ ? ab_.arm(hello->node_id) : std::uint8_t{0};
      scfg.model = arm_model_[scfg.ab_arm];
    }
    (scfg.ab_arm == 0 ? stats_.ab_sessions_a : stats_.ab_sessions_b)
        .fetch_add(1, std::memory_order_relaxed);
    // The session is pinned to this reactor's shard, so the sink below
    // only ever runs on the thread stepping this reactor (its pump_shard
    // or its close_conn) — never concurrently with the conn's owner.
    const auto id = engine_.open_session(
        [this, cp](const service::SessionResult& r) {
          if (!cp->accept_verdicts) return;
          BeatVerdictMsg v;
          v.r_peak = r.beat.r_peak;
          v.beat_class = static_cast<std::uint8_t>(r.beat.predicted);
          v.quality = static_cast<std::uint8_t>(r.beat.quality);
          enqueue_frame(*cp, FrameType::BeatVerdict, r.sequence,
                        encode_beat_verdict(v));
          stats_.verdicts_tx.fetch_add(1, std::memory_order_relaxed);
        },
        std::move(scfg), c.owner->index);
    if (id.has_value()) {
      c.session = *id;
      c.accept_verdicts = true;
      ack.session = *id;
    } else {
      ack.status = HelloStatus::FleetFull;
    }
  }
  enqueue_frame(c, FrameType::HelloAck, 0, encode_hello_ack(ack));
  if (ack.status != HelloStatus::Ok) c.draining = true;  // ack, then close
}

void GatewayServer::offer_samples(Conn& c) {
  if (c.inbound.empty() || !c.session.has_value()) return;
  const service::OfferOutcome out = engine_.offer(
      *c.session, std::span<const dsp::Sample>(c.inbound));
  if (out.accepted > 0)
    c.inbound.erase(c.inbound.begin(),
                    c.inbound.begin() +
                        static_cast<std::ptrdiff_t>(out.accepted));
  // Anything deferred (session queue full) or rejected (fleet-wide gauge)
  // stays parked for the next round — the socket is not read meanwhile.
}

void GatewayServer::on_sample_chunk(Conn& c, const FrameView& f) {
  if (!c.hello_done || !c.session.has_value()) {
    stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
    close_conn(c, false);
    return;
  }
  if (f.seq != c.next_chunk_seq) {
    // A gap or reorder in the dense chunk numbering: the stream can no
    // longer be trusted to be gap-free, so the link restarts.
    stats_.seq_rejects.fetch_add(1, std::memory_order_relaxed);
    stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
    close_conn(c, false);
    return;
  }
  const std::size_t before = c.inbound.size();
  if (!decode_sample_chunk(f.payload, c.inbound)) {
    stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
    close_conn(c, false);
    return;
  }
  ++c.next_chunk_seq;
  stats_.chunks_rx.fetch_add(1, std::memory_order_relaxed);
  stats_.samples_rx.fetch_add(c.inbound.size() - before,
                              std::memory_order_relaxed);
  offer_samples(c);
}

void GatewayServer::on_full_beat(Conn& c, const FrameView& f) {
  if (!c.hello_done) {
    stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
    close_conn(c, false);
    return;
  }
  // At-least-once from the client: a seq at or below the high-water mark
  // was already processed — ack again (the first ack may have been lost
  // with the previous connection) but do not re-classify or re-verdict.
  const bool dup =
      c.last_full_seq.has_value() && f.seq <= *c.last_full_seq;
  FullBeatMsg m;
  if (!decode_full_beat(f.payload, m, c.window_scratch)) {
    stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
    close_conn(c, false);
    return;
  }
  if (m.count != 0 &&
      c.window_scratch.size() != classifier_.projector().expected_window()) {
    stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
    close_conn(c, false);
    return;
  }
  enqueue_frame(c, FrameType::Ack, f.seq, encode_ack(AckMsg{FrameType::FullBeat}));
  if (dup) {
    // The first transmission's verdict may have died with a previous
    // connection (the client holds an upload until its verdict arrives).
    // Recompute from this frame's own payload — classification is
    // deterministic, so the resent verdict is bit-identical — and answer
    // again; the client dedupes by seq. Counted as a dup, not a new beat.
    stats_.full_beat_dups.fetch_add(1, std::memory_order_relaxed);
  } else {
    c.last_full_seq = f.seq;
    stats_.full_beats_rx.fetch_add(1, std::memory_order_relaxed);
    if (m.count != 0 &&
        !ecg::is_pathological(static_cast<ecg::BeatClass>(
            m.beat_class & 0x3u)) &&
        static_cast<dsp::SignalQuality>(m.quality & 0x3u) ==
            dsp::SignalQuality::Good) {
      // The per-connection dup guard above forgets its high-water when a
      // killed connection is replaced, so a retransmitted escalation can
      // reach this branch looking fresh. The per-node map remembers what
      // was already counted across reconnects — which may land on a
      // different reactor, hence the mutex — keeping the fleet rollup
      // exactly-once.
      const std::lock_guard<std::mutex> lock(drift_mutex_);
      const auto [it, inserted] =
          drift_counted_high_.try_emplace(c.node_id, f.seq);
      if (inserted || f.seq > it->second) {
        it->second = f.seq;
        stats_.drift_escalations_rx.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Re-classify the uploaded window with this session's *current* model —
  // the check pass before the detailed delineation stage, and it must
  // agree with the model the session's streamed beats are classified
  // under (reading the session model here is safe: dispatch runs on the
  // reactor thread that owns the session's shard pump). A 0-sample
  // escalation (Suspect signal on the node) has no trustworthy window:
  // Unknown. The scratch is per-reactor, so concurrent FULL_BEATs on
  // different reactors never share it.
  const service::SessionModel* sm =
      c.session.has_value() ? engine_.session_model(*c.session) : nullptr;
  const embedded::EmbeddedClassifier& clf =
      sm != nullptr ? sm->classifier : classifier_;
  BeatVerdictMsg v;
  v.r_peak = m.r_peak;
  v.quality = m.quality;
  v.beat_class = static_cast<std::uint8_t>(
      m.count == 0 ? ecg::BeatClass::Unknown
                   : clf.classify_window(
                         std::span<const dsp::Sample>(c.window_scratch),
                         c.owner->full_beat_scratch));
  enqueue_frame(c, FrameType::BeatVerdict, f.seq, encode_beat_verdict(v));
  stats_.verdicts_tx.fetch_add(1, std::memory_order_relaxed);
}

void GatewayServer::dispatch(Conn& c, const FrameView& f) {
  switch (f.type) {
    case FrameType::Hello:
      on_hello(c, f);
      return;
    case FrameType::SampleChunk:
      on_sample_chunk(c, f);
      return;
    case FrameType::FullBeat:
      on_full_beat(c, f);
      return;
    case FrameType::Heartbeat:
      stats_.heartbeats_rx.fetch_add(1, std::memory_order_relaxed);
      enqueue_frame(c, FrameType::Ack, f.seq,
                    encode_ack(AckMsg{FrameType::Heartbeat}));
      return;
    case FrameType::Bye:
      // Graceful close: flush the session tail as verdicts, drain, close.
      close_conn(c, /*deliver_tail=*/true);
      return;
    case FrameType::ModelPush:
      on_model_push(c, f);
      return;
    case FrameType::ModelPushPart:
      on_model_push_part(c, f);
      return;
    case FrameType::HelloAck:
    case FrameType::BeatVerdict:
    case FrameType::Ack:
    case FrameType::ModelAck:  // acks flow gateway -> pusher, never back
      stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
      close_conn(c, false);
      return;
  }
}

void GatewayServer::ack_push(Conn& c, ModelPushStatus status,
                             std::uint64_t version) {
  (status == ModelPushStatus::Ok ? stats_.model_pushes_ok
                                 : stats_.model_push_nacks)
      .fetch_add(1, std::memory_order_relaxed);
  enqueue_frame(c, FrameType::ModelAck, 0,
                encode_model_ack(ModelAckMsg{status, version}));
  c.push_buf.clear();
  c.push_buf.shrink_to_fit();
  // One push per control connection: answer, flush, close. The pusher
  // reads the verdict and decides whether to retry on a fresh connection.
  c.draining = true;
}

void GatewayServer::on_model_push(Conn& c, const FrameView& f) {
  const auto m = decode_model_push(f.payload);
  // MODEL_PUSH is only valid as the very first frame: a data connection
  // (hello_done) or a connection already mid-push cannot announce one.
  if (c.hello_done || c.ctrl || !m.has_value()) {
    stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
    close_conn(c, false);
    return;
  }
  c.ctrl = true;
  stats_.model_pushes_rx.fetch_add(1, std::memory_order_relaxed);
  if (m->total_bytes == 0 || m->total_bytes > kMaxBundleBytes) {
    ack_push(c, ModelPushStatus::TooLarge, m->version);
    return;
  }
  const std::uint64_t chunk = m->chunk_bytes;
  const std::uint64_t want_parts =
      chunk == 0 ? 0 : (m->total_bytes + chunk - 1) / chunk;
  if (chunk == 0 || chunk > kMaxPayloadBytes || m->part_count == 0 ||
      m->part_count != want_parts) {
    ack_push(c, ModelPushStatus::Malformed, m->version);
    return;
  }
  c.push_version = m->version;
  c.push_digest = m->digest;
  c.push_total = m->total_bytes;
  c.push_parts = m->part_count;
  c.push_chunk = m->chunk_bytes;
  c.push_next_part = 0;
  c.push_buf.clear();
  c.push_buf.reserve(static_cast<std::size_t>(m->total_bytes));
}

void GatewayServer::on_model_push_part(Conn& c, const FrameView& f) {
  // Parts are only valid inside an announced push, in dense order, each
  // exactly chunk_bytes except a short final part.
  if (!c.ctrl || c.push_next_part >= c.push_parts ||
      f.seq != c.push_next_part) {
    stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
    close_conn(c, false);
    return;
  }
  const std::uint64_t offset =
      static_cast<std::uint64_t>(c.push_next_part) * c.push_chunk;
  const std::uint64_t expected =
      std::min<std::uint64_t>(c.push_chunk, c.push_total - offset);
  if (f.payload.size() != expected) {
    ack_push(c, ModelPushStatus::Malformed, c.push_version);
    return;
  }
  c.push_buf.insert(c.push_buf.end(), f.payload.begin(), f.payload.end());
  ++c.push_next_part;
  stats_.model_push_parts_rx.fetch_add(1, std::memory_order_relaxed);
  stats_.model_push_bytes_rx.fetch_add(f.payload.size(),
                                       std::memory_order_relaxed);
  if (c.push_next_part == c.push_parts) finish_push(c);
}

void GatewayServer::finish_push(Conn& c) {
  // End-to-end integrity first: the announced digest must match the
  // reassembled image regardless of what the per-frame CRCs said.
  if (lifecycle::bundle_digest(c.push_buf) != c.push_digest) {
    ack_push(c, ModelPushStatus::BadDigest, c.push_version);
    return;
  }
  std::shared_ptr<const service::SessionModel> model;
  try {
    lifecycle::ModelBundle bundle = lifecycle::decode_bundle(c.push_buf);
    if (bundle.version != c.push_version) {
      ack_push(c, ModelPushStatus::Malformed, c.push_version);
      return;
    }
    model = lifecycle::instantiate_bundle(bundle);
  } catch (const hbrp::Error&) {
    ack_push(c, ModelPushStatus::Malformed, c.push_version);
    return;
  }
  switch (registry_.admit(model, c.push_digest)) {
    case lifecycle::AdmitResult::Duplicate:
      ack_push(c, ModelPushStatus::Duplicate, c.push_version);
      return;
    case lifecycle::AdmitResult::Downgrade:
      ack_push(c, ModelPushStatus::Downgrade, c.push_version);
      return;
    case lifecycle::AdmitResult::BadGeometry:
      ack_push(c, ModelPushStatus::BadGeometry, c.push_version);
      return;
    case lifecycle::AdmitResult::RegistryFull:
      ack_push(c, ModelPushStatus::RegistryFull, c.push_version);
      return;
    case lifecycle::AdmitResult::Ok:
      break;
  }
  // Deploy. Staging only sets each session's pending-swap slot; the swap
  // itself is applied by the session's owning pump thread at its next
  // round boundary, so in-flight beats finish on the old model and no new
  // hot-path lock is taken here.
  {
    const std::lock_guard<std::mutex> lock(models_mutex_);
    if (ab_on_) {
      // Candidate deployment: arm B only, not promoted — graduation to
      // fleet-wide active is promote_candidate()'s explicit decision.
      arm_model_[1] = model;
      engine_.stage_swap_arm(1, model);
    } else {
      registry_.promote(model->version);
      arm_model_[0] = model;
      arm_model_[1] = model;
      engine_.stage_swap_all(model);
    }
  }
  ack_push(c, ModelPushStatus::Ok, c.push_version);
}

void GatewayServer::enable_ab(lifecycle::AbSplit split) {
  const std::lock_guard<std::mutex> lock(models_mutex_);
  ab_ = split;
  ab_on_ = true;
}

void GatewayServer::disable_ab() {
  const std::lock_guard<std::mutex> lock(models_mutex_);
  ab_on_ = false;
  // Collapse both arms onto the incumbent; sessions already opened on arm
  // B keep their tag but future deployments treat the ward as one arm.
  arm_model_[1] = arm_model_[0];
}

bool GatewayServer::ab_enabled() const {
  const std::lock_guard<std::mutex> lock(models_mutex_);
  return ab_on_;
}

bool GatewayServer::promote_candidate() {
  const std::lock_guard<std::mutex> lock(models_mutex_);
  const std::shared_ptr<const service::SessionModel> cand = arm_model_[1];
  if (cand == nullptr || cand->version == registry_.active_version())
    return false;
  registry_.promote(cand->version);
  arm_model_[0] = cand;
  engine_.stage_swap_all(cand);
  return true;
}

bool GatewayServer::rollback_model() {
  const std::lock_guard<std::mutex> lock(models_mutex_);
  if (!registry_.rollback()) return false;
  std::shared_ptr<const service::SessionModel> m = registry_.active();
  HBRP_REQUIRE(m != nullptr, "rollback_model: active version has no slot");
  arm_model_[0] = m;
  arm_model_[1] = m;
  engine_.stage_swap_all(std::move(m));
  return true;
}

void GatewayServer::read_conn(Conn& c) {
  unsigned char buf[16384];
  // Bounded reads per round so one firehose node cannot starve the rest;
  // level-triggered readiness re-reports anything left for the next round.
  for (int round = 0; round < 4 && c.alive && !c.draining; ++round) {
    if (!c.inbound.empty()) return;  // backpressured: stop reading
    const IoResult r = recv_some(c.sock.fd(), buf);
    if (r.n > 0) {
      stats_.bytes_rx.fetch_add(r.n, std::memory_order_relaxed);
      c.last_rx = Clock::now();
      if (!c.parser.feed(std::span<const unsigned char>(buf, r.n))) {
        stats_.frame_rejects.fetch_add(1, std::memory_order_relaxed);
        stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
        close_conn(c, false);
        return;
      }
      FrameView f;
      auto st = FrameParser::Status::NeedMore;
      while (c.alive && !c.draining) {
        st = c.parser.next(f);
        if (st != FrameParser::Status::Ok) break;
        stats_.frames_rx.fetch_add(1, std::memory_order_relaxed);
        c.owner->frames_rx.fetch_add(1, std::memory_order_relaxed);
        dispatch(c, f);
      }
      if (!c.alive) return;
      if (st == FrameParser::Status::Corrupt) {
        stats_.frame_rejects.fetch_add(1, std::memory_order_relaxed);
        stats_.conns_dropped_protocol.fetch_add(1, std::memory_order_relaxed);
        close_conn(c, false);
        return;
      }
      continue;
    }
    if (r.would_block) return;
    // EOF without BYE or a hard error: the peer is gone; no tail.
    close_conn(c, false);
    return;
  }
}

void GatewayServer::flush_conn(Conn& c) {
  while (c.alive && c.out_head < c.out.size()) {
    const IoResult r = send_some(
        c.sock.fd(),
        std::span<const unsigned char>(c.out).subspan(c.out_head));
    if (r.n > 0) {
      c.out_head += r.n;
      stats_.bytes_tx.fetch_add(r.n, std::memory_order_relaxed);
      continue;
    }
    if (r.would_block) break;
    close_conn(c, false);
    return;
  }
  if (c.out_head >= c.out.size()) {
    c.out.clear();
    c.out_head = 0;
  } else if (c.out_head > (1u << 16)) {
    c.out.erase(c.out.begin(),
                c.out.begin() + static_cast<std::ptrdiff_t>(c.out_head));
    c.out_head = 0;
  }
}

std::size_t GatewayServer::step_reactor(Reactor& r, int timeout_ms) {
  const std::uint64_t frames_before =
      r.frames_rx.load(std::memory_order_relaxed) +
      r.frames_tx.load(std::memory_order_relaxed);
  r.wakeups.fetch_add(1, std::memory_order_relaxed);
  stats_.wakeups.fetch_add(1, std::memory_order_relaxed);

  // Phase -1: adopt connections reactor 0 handed over since last step.
  adopt_inbox(r);

  // Phase 0: retry ingest parked by backpressure (pump freed queue space).
  bool parked = false;
  for (auto& c : r.conns) {
    if (!c->alive || c->inbound.empty()) continue;
    offer_samples(*c);
    if (!c->inbound.empty()) parked = true;
  }

  // Phase 1: declare interest and wait for readiness. A reactor with
  // latent pump work (parked ingest or an undrained shard queue) must not
  // sleep — its own pump is the only thing that makes progress.
  if (r.index == 0) r.poller.watch(listener_.fd(), true, false);
  r.poller.watch(r.wake.fd(), true, false);
  for (auto& c : r.conns) {
    if (!c->alive) continue;
    const bool want_read = !c->draining && c->inbound.empty();
    const bool want_write = c->out_head < c->out.size();
    r.poller.watch(c->sock.fd(), want_read, want_write);
  }
  const bool pump_pending =
      parked || engine_.shard_queued_samples(r.index) > 0;
  (void)r.poller.wait(pump_pending ? 0 : timeout_ms, r.events);

  // Phase 2: accept (reactor 0) + read + dispatch (feeds ingest queues).
  for (const PollEvent& e : r.events) {
    if (r.index == 0 && e.fd == listener_.fd()) {
      if (e.readable) accept_pending();
      continue;
    }
    if (e.fd == r.wake.fd()) {
      r.wake.consume();
      adopt_inbox(r);
      continue;
    }
    const auto it = r.by_fd.find(e.fd);
    if (it == r.by_fd.end()) continue;
    Conn& c = *it->second;
    if (!c.alive) continue;
    // A broken fd still reads: the recv drains any final bytes and then
    // surfaces the EOF/error, which closes the connection properly.
    if (e.readable || e.broken) read_conn(c);
  }

  // Phase 3: one engine round for this reactor's own shard; the sinks
  // append verdict frames to this reactor's connections in order.
  engine_.pump_shard(r.index);

  // Phase 4: flush, enforce caps, finalize drains, reap.
  const auto now = Clock::now();
  for (auto& c : r.conns) {
    if (!c->alive) continue;
    if (c->overflowed) {
      stats_.conns_dropped_overflow.fetch_add(1, std::memory_order_relaxed);
      close_conn(*c, false);
      continue;
    }
    flush_conn(*c);
    if (!c->alive) continue;
    if (c->draining && c->out_head >= c->out.size()) {
      finalize_close(*c);
      continue;
    }
    if (cfg_.idle_timeout_ms > 0 && !c->draining &&
        now - c->last_rx > std::chrono::milliseconds(cfg_.idle_timeout_ms)) {
      stats_.conns_dropped_idle.fetch_add(1, std::memory_order_relaxed);
      close_conn(*c, false);
    }
  }
  std::erase_if(r.conns, [](const std::unique_ptr<Conn>& c) {
    return !c->alive;
  });

  return static_cast<std::size_t>(
      r.frames_rx.load(std::memory_order_relaxed) +
      r.frames_tx.load(std::memory_order_relaxed) - frames_before);
}

std::size_t GatewayServer::poll_once(int timeout_ms) {
  std::size_t moved = 0;
  for (std::size_t i = 0; i < reactors_.size(); ++i)
    moved += step_reactor(*reactors_[i], i == 0 ? timeout_ms : 0);
  return moved;
}

void GatewayServer::run_reactor(Reactor& r) {
  int wait_ms = kBaseWaitMs;
  int cap_ms = kMaxWaitMs;
  if (cfg_.idle_timeout_ms > 0)
    cap_ms = std::clamp(cfg_.idle_timeout_ms / 4, kBaseWaitMs, kMaxWaitMs);
  while (!stop_.load(std::memory_order_relaxed)) {
    const std::size_t moved = step_reactor(r, wait_ms);
    if (moved > 0) {
      wait_ms = kBaseWaitMs;
    } else {
      r.idle_wakeups.fetch_add(1, std::memory_order_relaxed);
      stats_.idle_wakeups.fetch_add(1, std::memory_order_relaxed);
      wait_ms = std::min(wait_ms * 2, cap_ms);
    }
  }
}

void GatewayServer::serve() {
  std::vector<std::thread> threads;
  threads.reserve(reactors_.size() - 1);
  for (std::size_t i = 1; i < reactors_.size(); ++i)
    threads.emplace_back([this, i] { run_reactor(*reactors_[i]); });
  run_reactor(*reactors_[0]);
  for (std::thread& t : threads) t.join();
}

void GatewayServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& r : reactors_) r->wake.notify();
}

}  // namespace hbrp::net
