// net::push_bundle — the pusher side of the MODEL_PUSH control protocol.
//
// A deployment tool (or test) connects to the gateway, announces a
// versioned bundle image with MODEL_PUSH, streams it in bounded
// MODEL_PUSH_PART chunks and waits for the single MODEL_ACK verdict. The
// call is synchronous and self-contained: one connection, one push, one
// answer. `delivered` distinguishes "the gateway judged the push" (any
// ModelPushStatus, including NACKs) from transport failure — a connection
// killed mid-transfer, a refused connect, or a timeout — where the pusher
// learned nothing and the gateway is guaranteed (by the protocol's
// digest + admission discipline) to still run its previous model.
//
// push_image() streams a pre-encoded byte image without touching it, so
// tests and the CI tamper gate can push deliberately corrupted bundles
// and assert the gateway NACKs them.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "lifecycle/bundle.hpp"
#include "net/wire.hpp"

namespace hbrp::net {

struct PushResult {
  /// True when the gateway answered with MODEL_ACK — check `status` for
  /// the verdict. False when the transport died first (see `error`).
  bool delivered = false;
  ModelPushStatus status = ModelPushStatus::Malformed;
  std::uint64_t version = 0;
  std::string error;
};

/// Encodes `bundle` and pushes it to the gateway on 127.0.0.1:port.
PushResult push_bundle(std::uint16_t port,
                       const lifecycle::ModelBundle& bundle,
                       int timeout_ms = 10000,
                       std::size_t chunk_bytes = 16384);

/// Pushes a raw image verbatim, announcing `version` and the image's own
/// digest. The image is NOT validated locally — that is the point: the
/// gateway must be the one to reject garbage.
PushResult push_image(std::uint16_t port, std::uint64_t version,
                      std::span<const unsigned char> image,
                      int timeout_ms = 10000,
                      std::size_t chunk_bytes = 16384);

}  // namespace hbrp::net
