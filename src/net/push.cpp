#include "net/push.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>

#include "net/socket.hpp"

namespace hbrp::net {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<long long>(0, left.count()));
}

}  // namespace

PushResult push_image(std::uint16_t port, std::uint64_t version,
                      std::span<const unsigned char> image, int timeout_ms,
                      std::size_t chunk_bytes) {
  PushResult res;
  res.version = version;
  if (image.empty() || image.size() > kMaxBundleBytes) {
    res.error = "image size out of range";
    return res;
  }
  chunk_bytes = std::clamp<std::size_t>(chunk_bytes, 1, kMaxPayloadBytes);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);

  Socket sock = connect_loopback(port);
  if (!sock.valid()) {
    res.error = "connect failed";
    return res;
  }
  {
    // Non-blocking connect: wait for writability, then check the verdict.
    pollfd p{};
    p.fd = sock.fd();
    p.events = POLLOUT;
    if (::poll(&p, 1, remaining_ms(deadline)) <= 0 ||
        !connect_finished(sock.fd())) {
      res.error = "connect failed";
      return res;
    }
  }

  // The whole push is assembled up front: announce frame, then every part
  // with a dense part counter in the frame seq. The last part is short.
  const std::size_t parts = (image.size() + chunk_bytes - 1) / chunk_bytes;
  ModelPushMsg announce;
  announce.version = version;
  announce.total_bytes = image.size();
  announce.digest = lifecycle::bundle_digest(image);
  announce.part_count = static_cast<std::uint32_t>(parts);
  announce.chunk_bytes = static_cast<std::uint32_t>(chunk_bytes);
  std::vector<unsigned char> out;
  out.reserve(image.size() + parts * 24 + 64);
  append_frame(out, FrameType::ModelPush, 0, encode_model_push(announce));
  for (std::size_t i = 0; i < parts; ++i) {
    const std::size_t off = i * chunk_bytes;
    append_frame(out, FrameType::ModelPushPart, i,
                 image.subspan(off, std::min(chunk_bytes,
                                             image.size() - off)));
  }

  std::size_t head = 0;
  FrameParser parser;
  unsigned char buf[16384];
  while (true) {
    const int left = remaining_ms(deadline);
    if (left <= 0) {
      res.error = "timed out waiting for MODEL_ACK";
      return res;
    }
    pollfd p{};
    p.fd = sock.fd();
    p.events =
        static_cast<short>(POLLIN | (head < out.size() ? POLLOUT : 0));
    (void)::poll(&p, 1, std::min(left, 50));
    if ((p.revents & POLLNVAL) != 0) {
      res.error = "socket died";
      return res;
    }
    if (head < out.size()) {
      const IoResult w = send_some(
          sock.fd(),
          std::span<const unsigned char>(out).subspan(head));
      if (w.error) {
        res.error = "send failed";
        return res;
      }
      head += w.n;
    }
    const IoResult r = recv_some(sock.fd(), buf);
    if (r.n > 0) {
      if (!parser.feed(std::span<const unsigned char>(buf, r.n))) {
        res.error = "corrupt frame from gateway";
        return res;
      }
      FrameView f;
      while (parser.next(f) == FrameParser::Status::Ok) {
        if (f.type != FrameType::ModelAck) continue;
        const auto ack = decode_model_ack(f.payload);
        if (!ack.has_value()) {
          res.error = "malformed MODEL_ACK";
          return res;
        }
        res.delivered = true;
        res.status = ack->status;
        res.version = ack->version;
        return res;
      }
    } else if (r.eof || r.error) {
      res.error = "connection closed before MODEL_ACK";
      return res;
    }
  }
}

PushResult push_bundle(std::uint16_t port,
                       const lifecycle::ModelBundle& bundle, int timeout_ms,
                       std::size_t chunk_bytes) {
  const std::vector<unsigned char> image = lifecycle::encode_bundle(bundle);
  return push_image(port, bundle.version, image, timeout_ms, chunk_bytes);
}

}  // namespace hbrp::net
