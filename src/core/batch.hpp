// Contiguous beat-window arena for the batched evaluation engine.
//
// The per-beat evaluation path (one std::vector per window, one heap
// projection buffer per beat) dominates training-time cost once the GA
// scores hundreds of candidate projections against thousands of beats.
// BeatBatch fixes the data layout instead: all windows live back-to-back in
// one arena (beat i occupies samples [i*W, (i+1)*W)), labels ride alongside,
// and the batch entry points (rp::BeatProjector::project_batch,
// nfc::NeuroFuzzyClassifier::classify_batch, embedded classify_batch) walk
// the arena with caller-owned scratch buffers — zero per-beat allocation in
// steady state and a cache-friendly sequential access pattern.
//
// A BeatBatch is immutable once built and is safe to share across Executor
// workers; every worker brings its own scratch (EvalScratch below).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/signal.hpp"
#include "ecg/dataset.hpp"
#include "ecg/types.hpp"
#include "embedded/bundle.hpp"

namespace hbrp::core {

class BeatBatch {
 public:
  BeatBatch() = default;
  /// Empty batch accepting windows of exactly `window_length` samples.
  explicit BeatBatch(std::size_t window_length);

  /// Copies every beat window of `ds` into one contiguous arena.
  static BeatBatch from_dataset(const ecg::BeatDataset& ds);

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t window_length() const { return window_length_; }

  void reserve(std::size_t beats);
  void clear();

  /// Appends one window (must be window_length() samples).
  void append(std::span<const dsp::Sample> window, ecg::BeatClass label);

  /// Window of beat i as a view into the arena.
  std::span<const dsp::Sample> window(std::size_t i) const;

  /// The whole arena: size() * window_length() samples, beat-major.
  std::span<const dsp::Sample> windows() const { return samples_; }

  std::span<const ecg::BeatClass> labels() const { return labels_; }
  ecg::BeatClass label(std::size_t i) const;

 private:
  std::size_t window_length_ = 0;
  std::vector<dsp::Sample> samples_;
  std::vector<ecg::BeatClass> labels_;
};

/// Per-thread workspace bundling every scratch buffer the batched
/// evaluation chain needs. Buffers grow to the high-water mark of the
/// batches they serve and are then reused.
struct EvalScratch {
  rp::ProjectionScratch projection;
  std::vector<double> u;             ///< float-path projected coefficients
  std::vector<std::int32_t> u_int;   ///< integer-path projected coefficients
  std::vector<ecg::BeatClass> cls;   ///< per-beat decisions
  embedded::ClassifyScratch embedded;
};

}  // namespace hbrp::core
