// Firmware-shaped streaming beat monitor.
//
// RealTimePipeline (core/pipeline.hpp) emulates the WBSN application over a
// whole recorded lead at once; this class is the push-one-ADC-sample-at-a-
// time equivalent with bounded memory, which is what actually runs on the
// node: a streaming conditioner feeds a rolling analysis buffer of a few
// seconds; whenever the buffer fills, the wavelet peak detector scans it,
// beats far enough from the buffer's right edge are finalized, classified by
// the embedded integer classifier and reported; the buffer then slides,
// keeping one overlap region so no beat is lost at a chunk boundary.
//
// The monitor covers the classification sub-system (1) of the paper's
// Fig. 6 — the decision *whether* a beat needs the detailed multi-lead
// analysis; the delineation stage itself consumes these flags downstream.
#pragma once

#include <functional>
#include <vector>

#include "dsp/peak_detect.hpp"
#include "dsp/streaming.hpp"
#include "embedded/bundle.hpp"

namespace hbrp::core {

/// One finalized beat from the streaming monitor.
struct MonitorBeat {
  /// R-peak index on the conditioned-signal timeline (aligned with the raw
  /// input timeline; availability lags by StreamingBeatMonitor::latency()).
  std::size_t r_peak = 0;
  ecg::BeatClass predicted = ecg::BeatClass::N;
};

struct MonitorConfig {
  std::size_t window_before = 100;
  std::size_t window_after = 100;
  dsp::FilterConfig filter = dsp::FilterConfig::for_rate(dsp::kMitBihFs);
  dsp::PeakDetectorConfig peak;
  /// Rolling analysis buffer (s). Must hold several beats for the adaptive
  /// threshold to make sense.
  double chunk_s = 8.0;
  /// Overlap carried between consecutive scans (s); must exceed one beat
  /// window plus the detector refractory so boundary beats are not lost.
  double overlap_s = 2.0;
};

class StreamingBeatMonitor {
 public:
  StreamingBeatMonitor(embedded::EmbeddedClassifier classifier,
                       MonitorConfig cfg = {});

  /// Feeds one raw ADC sample; returns beats finalized by this sample
  /// (usually empty, occasionally a handful when a chunk completes).
  std::vector<MonitorBeat> push(dsp::Sample x);

  /// Finalizes everything still buffered and resets the monitor.
  std::vector<MonitorBeat> flush();

  /// Worst-case number of samples held across all internal state.
  std::size_t memory_samples() const;

  /// Input-to-report latency bound, in samples (conditioner delay plus one
  /// full analysis chunk).
  std::size_t latency() const;

  const embedded::EmbeddedClassifier& classifier() const {
    return classifier_;
  }

 private:
  std::vector<MonitorBeat> scan(bool final_pass);

  embedded::EmbeddedClassifier classifier_;
  MonitorConfig cfg_;
  dsp::StreamingConditioner conditioner_;
  dsp::Signal buffer_;           // rolling conditioned samples
  std::size_t buffer_base_ = 0;  // absolute index of buffer_[0]
  std::size_t emitted_up_to_ = 0;  // absolute index: peaks below are reported
  std::size_t chunk_samples_ = 0;
  std::size_t overlap_samples_ = 0;
};

}  // namespace hbrp::core
