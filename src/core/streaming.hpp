// Firmware-shaped streaming beat monitor.
//
// RealTimePipeline (core/pipeline.hpp) emulates the WBSN application over a
// whole recorded lead at once; this class is the push-one-ADC-sample-at-a-
// time equivalent with bounded memory, which is what actually runs on the
// node: a block conditioner (kernels/dsp_condition.hpp) batches raw samples
// and feeds a rolling analysis buffer of a few seconds; whenever the buffer
// fills, the configured peak detector (wavelet by default, or the adaptive-
// threshold fast path — see dsp::PeakDetectorKind) scans it, beats far
// enough from the buffer's right edge are finalized, classified by the
// embedded integer classifier and reported; the buffer then slides, keeping
// one overlap region so no beat is lost at a chunk boundary.
//
// The monitor covers the classification sub-system (1) of the paper's
// Fig. 6 — the decision *whether* a beat needs the detailed multi-lead
// analysis; the delineation stage itself consumes these flags downstream.
//
// Fault tolerance: a streaming signal-quality estimator (dsp/quality.hpp)
// grades the raw input and drives a Good / Suspect / Bad degradation
// machine. Beats detected during Suspect segments are escalated to the
// safe default (Unknown ⇒ pathological ⇒ full delineation); during Bad
// segments (lead-off, saturation) detection is suppressed entirely and the
// conditioner plus rolling buffer are re-armed on recovery, so no stale
// filter state or poisoned adaptive threshold touches the first beats
// after a reconnect. The raw-ADC boundary itself is defended: the
// push(double) overload rejects non-finite samples and both overloads
// clamp out-of-range codes, with every intervention counted in
// MonitorStats.
#pragma once

#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "dsp/peak_detect.hpp"
#include "dsp/quality.hpp"
#include "drift/tracker.hpp"
#include "embedded/bundle.hpp"
#include "kernels/dsp_condition.hpp"
#include "kernels/dsp_peaks.hpp"

namespace hbrp::core {

/// One finalized beat from the streaming monitor.
struct MonitorBeat {
  /// R-peak index on the conditioned-signal timeline (aligned with the raw
  /// input timeline; availability lags by StreamingBeatMonitor::latency()).
  std::size_t r_peak = 0;
  ecg::BeatClass predicted = ecg::BeatClass::N;
  /// Acquisition quality at the beat's position. Suspect beats are always
  /// reported as Unknown (safe default: escalate to detailed analysis).
  dsp::SignalQuality quality = dsp::SignalQuality::Good;
};

/// Cumulative acquisition/robustness counters (never reset by flush()).
struct MonitorStats {
  std::size_t samples_in = 0;         ///< raw samples offered to push()
  std::size_t rejected_nonfinite = 0; ///< NaN/Inf dropped at the boundary
  std::size_t clamped = 0;            ///< out-of-range codes clamped to rails
  std::size_t bad_signal_samples = 0; ///< samples discarded while Bad
  std::size_t suspect_beats = 0;      ///< beats escalated to Unknown
  std::size_t degradations = 0;       ///< entries into the Bad state
  std::size_t recoveries = 0;         ///< re-arms after leaving Bad
};

struct MonitorConfig {
  std::size_t window_before = 100;
  std::size_t window_after = 100;
  dsp::FilterConfig filter = dsp::FilterConfig::for_rate(dsp::kMitBihFs);
  dsp::PeakDetectorConfig peak;
  /// Rolling analysis buffer (s). Must hold several beats for the adaptive
  /// threshold to make sense.
  double chunk_s = 8.0;
  /// Overlap carried between consecutive scans (s); must exceed one beat
  /// window plus the detector refractory so boundary beats are not lost.
  double overlap_s = 2.0;
  /// Signal-quality gating (SQI chunking, thresholds, hysteresis).
  dsp::QualityConfig quality;
  /// Disables the degradation machine (every beat reports Good and nothing
  /// is suppressed) — the pre-robustness behaviour, kept for A/B tests.
  bool quality_gating = true;
};

/// Receives each finalized beat as soon as the monitor commits to it.
using BeatSink = std::function<void(const MonitorBeat&)>;

/// A finalized beat whose classification has been *deferred*: the hook the
/// fleet service layer (src/service) uses to batch beat windows across many
/// sessions into one core::BeatBatch and classify them centrally.
///
/// When `needs_classification` is true, `window` views the monitor's rolling
/// buffer (window_before + window_after samples around the R peak) and is
/// valid only for the duration of the sink call — copy it out. When false
/// the monitor has already decided (Suspect signal escalates straight to
/// Unknown, exactly as on the BeatSink path) and `window` is empty.
struct PendingBeat {
  MonitorBeat beat;
  std::span<const dsp::Sample> window;
  bool needs_classification = false;
};

/// Receives each finalized-but-unclassified beat (see PendingBeat).
using PendingBeatSink = std::function<void(const PendingBeat&)>;

class StreamingBeatMonitor {
 public:
  StreamingBeatMonitor(embedded::EmbeddedClassifier classifier,
                       MonitorConfig cfg = {});

  /// Feeds one raw ADC sample; every beat finalized by this sample (usually
  /// none, occasionally a handful when a chunk completes) is delivered to
  /// `sink` in report order. No per-sample allocation on the steady-state
  /// path — this is the firmware-shaped entry point.
  void push(dsp::Sample x, const BeatSink& sink);

  /// Untrusted raw front-end entry point: rejects non-finite values and
  /// clamps the rest into the ADC range before the integer path sees them.
  void push(double x, const BeatSink& sink);

  /// Block entry points: feed a contiguous run of samples. Exactly
  /// equivalent to pushing each sample in order — same beats, same order,
  /// same stats — but the natural shape for batch producers (drain queues,
  /// record replay) now that the conditioner itself works in blocks.
  void push_block(std::span<const dsp::Sample> xs, const BeatSink& sink);
  void push_block(std::span<const double> xs, const BeatSink& sink);
  void push_block(std::span<const dsp::Sample> xs, const PendingBeatSink& sink);
  void push_block(std::span<const double> xs, const PendingBeatSink& sink);

  /// Finalizes everything still buffered into `sink` and resets the monitor
  /// (the cumulative stats() survive).
  void flush(const BeatSink& sink);

  /// Deferred-classification variants of push/flush: beats that would have
  /// been classified are surrendered as PendingBeat windows instead, so a
  /// host-side aggregator can batch them across sessions. Beat order,
  /// quality tagging and the Suspect ⇒ Unknown escalation are identical to
  /// the BeatSink path; running the embedded classifier over each emitted
  /// window reproduces that path bit-exactly.
  void push(dsp::Sample x, const PendingBeatSink& sink);
  void push(double x, const PendingBeatSink& sink);
  void flush(const PendingBeatSink& sink);

  /// Vector-returning convenience wrapper over push(x, sink).
  std::vector<MonitorBeat> push(dsp::Sample x);

  /// Vector-returning convenience wrapper over push(x, sink).
  std::vector<MonitorBeat> push(double x);

  /// Vector-returning convenience wrapper over flush(sink).
  std::vector<MonitorBeat> flush();

  /// Worst-case number of samples held across all internal state.
  std::size_t memory_samples() const;

  /// Input-to-report latency bound, in samples (conditioner delay plus its
  /// batching slack plus one full analysis chunk).
  std::size_t latency() const;

  /// Current acquisition-quality state of the degradation machine.
  dsp::SignalQuality quality() const { return quality_state_; }

  /// Cumulative robustness counters.
  const MonitorStats& stats() const { return stats_; }

  const embedded::EmbeddedClassifier& classifier() const {
    return classifier_;
  }

  /// Swap-safe classifier rebind (model hot-swap): a cold-path copy taken
  /// between beats by the thread that owns the monitor. Detection and
  /// conditioning state are untouched — the classifier only maps finalized
  /// windows to classes — so the replacement must share the incumbent's
  /// window length and coefficient count for the streams to stay aligned.
  void set_classifier(const embedded::EmbeddedClassifier& classifier) {
    classifier_ = classifier;
  }

  /// Opt-in drift hook (non-owning, nullptr detaches): every beat the
  /// monitor classifies itself is observed through the projection already
  /// sitting in the classify scratch — zero extra projection cost. Beats
  /// surrendered through a PendingBeatSink are NOT observed here (their
  /// projection happens in the aggregator's batch; see service::Session),
  /// and Suspect beats are skipped on both paths — they were never
  /// projected, and doubtful signal must not teach the clusterer. The
  /// tracker must outlive the monitor or be detached first.
  void set_drift_tracker(drift::DriftTracker* tracker) { drift_ = tracker; }
  drift::DriftTracker* drift_tracker() const { return drift_; }

 private:
  // Exactly one of `beats` / `pending` is non-null: the classifying sink and
  // the deferred sink share one implementation of the whole scan/gating
  // machinery so the two paths cannot drift apart.
  void push_impl(dsp::Sample x, const BeatSink* beats,
                 const PendingBeatSink* pending);
  void push_impl(double x, const BeatSink* beats,
                 const PendingBeatSink* pending);
  void flush_impl(const BeatSink* beats, const PendingBeatSink* pending);
  void scan(bool final_pass, const BeatSink* beats,
            const PendingBeatSink* pending);
  void on_quality_update(dsp::SignalQuality next, const BeatSink* beats,
                         const PendingBeatSink* pending);
  dsp::SignalQuality quality_at(std::size_t absolute) const;
  void rearm(std::size_t at_absolute);
  /// Moves cond_out_ into the rolling buffer, scanning at every exact
  /// chunk-boundary crossing — the same scan positions the per-sample
  /// conditioner produced, so verdict streams are unchanged by batching.
  void append_conditioned(const BeatSink* beats,
                          const PendingBeatSink* pending);
  /// Drains the conditioner's pending batch through append_conditioned().
  void sync_conditioner(const BeatSink* beats, const PendingBeatSink* pending);

  embedded::EmbeddedClassifier classifier_;
  // Reused across beats on the classifying path (no per-beat allocation).
  embedded::ClassifyScratch classify_scratch_;
  drift::DriftTracker* drift_ = nullptr;  // opt-in, non-owning
  MonitorConfig cfg_;
  kernels::BlockConditioner conditioner_;
  dsp::Signal cond_out_;  // conditioner output staging (reused)
  kernels::PeakScratch peak_scratch_;
  std::vector<std::size_t> peaks_;  // detector output (reused)
  dsp::SignalQualityEstimator sqi_;
  dsp::Signal buffer_;           // rolling conditioned samples
  std::size_t buffer_base_ = 0;  // absolute index of buffer_[0]
  std::size_t emitted_up_to_ = 0;  // absolute index: peaks below are reported
  std::size_t chunk_samples_ = 0;
  std::size_t overlap_samples_ = 0;

  // Degradation machine (see header comment).
  dsp::SignalQuality quality_state_ = dsp::SignalQuality::Good;
  std::size_t input_index_ = 0;  // raw samples accepted onto the timeline
  dsp::Sample last_raw_ = 0;     // sample-hold value for rejected inputs
  bool needs_rearm_ = false;     // recovery pending: restart timeline anchors
  // Sparse (absolute index, state-from-there) history so beats finalized
  // several seconds later are tagged with the quality at *their* position.
  std::deque<std::pair<std::size_t, dsp::SignalQuality>> transitions_;
  dsp::SignalQuality baseline_quality_ = dsp::SignalQuality::Good;
  MonitorStats stats_;
};

}  // namespace hbrp::core
