#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "math/check.hpp"

namespace hbrp::core {

namespace {
// Set while the current thread is executing items of some job; nested
// parallel_for calls run inline instead of re-entering the pool.
thread_local bool t_in_job = false;
}  // namespace

struct Executor::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> pending_workers{0};
  std::mutex error_mutex;
  std::exception_ptr error;
};

std::size_t Executor::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

Executor::Executor(std::size_t threads)
    : threads_(threads == 0 ? hardware_threads() : threads) {
  workers_.reserve(threads_ - 1);
  for (std::size_t t = 1; t < threads_; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void Executor::run_chunks(Job& job) {
  for (;;) {
    const std::size_t begin =
        job.cursor.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) return;
    const std::size_t end = std::min(job.n, begin + job.chunk);
    try {
      for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
  }
}

void Executor::worker_loop() {
  t_in_job = true;  // nested parallel_for from fn must stay inline
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      // Participate in this generation exactly once: the decrement below is
      // what lets the submitter retire the job.
      seen = generation_;
      job = job_;
    }
    run_chunks(*job);
    if (job->pending_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last worker out: take the mutex briefly so the notify cannot slip
      // between the submitter's predicate check and its wait.
      { const std::lock_guard<std::mutex> lock(mutex_); }
      done_.notify_all();
    }
  }
}

void Executor::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  HBRP_REQUIRE(fn != nullptr, "Executor::parallel_for(): null function");
  if (n == 0) return;
  if (threads_ <= 1 || n == 1 || t_in_job) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Chunked self-serve scheduling: several chunks per thread so uneven item
  // costs balance out, but chunks big enough that the atomic cursor is not
  // the bottleneck.
  Job job;
  job.fn = &fn;
  job.n = n;
  job.chunk = std::max<std::size_t>(1, n / (4 * threads_));
  job.pending_workers.store(workers_.size(), std::memory_order_relaxed);

  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  wake_.notify_all();

  t_in_job = true;
  run_chunks(job);
  t_in_job = false;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return job.pending_workers.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace hbrp::core
