#include "core/pipeline.hpp"

#include "dsp/resample.hpp"
#include "kernels/dsp_condition.hpp"
#include "kernels/dsp_peaks.hpp"
#include "math/check.hpp"

namespace hbrp::core {

std::size_t PipelineResult::flagged_count() const {
  std::size_t acc = 0;
  for (const PipelineBeat& b : beats)
    acc += ecg::is_pathological(b.predicted);
  return acc;
}

double PipelineResult::flagged_fraction() const {
  if (beats.empty()) return 0.0;
  return static_cast<double>(flagged_count()) /
         static_cast<double>(beats.size());
}

RealTimePipeline::RealTimePipeline(embedded::EmbeddedClassifier classifier,
                                   PipelineConfig cfg)
    : classifier_(std::move(classifier)), cfg_(std::move(cfg)) {
  HBRP_REQUIRE(cfg_.window_before + cfg_.window_after ==
                   classifier_.projector().expected_window(),
               "RealTimePipeline: window geometry does not match the "
               "classifier's expected input");
}

PipelineResult RealTimePipeline::process(const ecg::Record& record) const {
  HBRP_REQUIRE(!record.leads.empty(), "RealTimePipeline: record has no leads");

  // Reference-lead conditioning + beat isolation via the block kernels
  // (bit-identical to dsp::condition_ecg / dsp::detect_r_peaks, several
  // times faster — scratch is local, so process() stays const and
  // thread-safe under process_all's executor).
  kernels::ConditionScratch cond_scratch;
  kernels::PeakScratch peak_scratch;
  dsp::Signal reference;
  kernels::condition_ecg_block(record.leads[0], cfg_.filter, cond_scratch,
                               reference);
  dsp::PeakDetectorConfig peak_cfg = cfg_.peak;
  peak_cfg.fs_hz = record.fs_hz;
  std::vector<std::size_t> peaks;
  kernels::detect_r_peaks_kind(reference, peak_cfg, peak_scratch, peaks);

  // Remaining leads are conditioned lazily, only if some beat needs
  // delineation (on the real node this is per-beat work on a short history
  // buffer; offline, conditioning the lead once is equivalent).
  std::vector<dsp::Signal> delineation_leads;
  bool leads_ready = false;
  auto ensure_leads = [&]() {
    if (leads_ready) return;
    delineation_leads.push_back(reference);
    for (std::size_t l = 1; l < record.leads.size(); ++l) {
      dsp::Signal conditioned;
      kernels::condition_ecg_block(record.leads[l], cfg_.filter, cond_scratch,
                                   conditioned);
      delineation_leads.push_back(std::move(conditioned));
    }
    leads_ready = true;
  };

  delineation::DelineatorConfig del_cfg = cfg_.delineator;
  del_cfg.fs_hz = record.fs_hz;

  PipelineResult result;
  result.beats.reserve(peaks.size());
  const std::size_t guard =
      std::max(cfg_.window_before, cfg_.window_after);
  for (const std::size_t peak : peaks) {
    if (peak < guard || peak + guard >= reference.size()) continue;
    PipelineBeat beat;
    beat.r_peak = peak;
    const dsp::Signal window = dsp::extract_window(
        reference, peak, cfg_.window_before, cfg_.window_after);
    beat.predicted = classifier_.classify_window(window);

    const bool needs_delineation =
        !cfg_.gate_delineation || ecg::is_pathological(beat.predicted);
    if (needs_delineation) {
      ensure_leads();
      beat.fiducials =
          delineation::delineate_beat_multilead(delineation_leads, peak,
                                                del_cfg);
      beat.delineated = true;
    }
    result.beats.push_back(beat);
  }
  return result;
}

std::vector<PipelineResult> RealTimePipeline::process_all(
    std::span<const ecg::Record> records, const Executor* executor) const {
  std::vector<PipelineResult> results(records.size());
  if (executor == nullptr || executor->threads() <= 1 || records.size() <= 1) {
    for (std::size_t i = 0; i < records.size(); ++i)
      results[i] = process(records[i]);
    return results;
  }
  executor->parallel_for(records.size(), [&](std::size_t i) {
    results[i] = process(records[i]);
  });
  return results;
}

}  // namespace hbrp::core
