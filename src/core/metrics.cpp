#include "core/metrics.hpp"

#include <algorithm>

#include "math/check.hpp"

namespace hbrp::core {

void ConfusionMatrix::add(ecg::BeatClass truth, ecg::BeatClass predicted) {
  HBRP_REQUIRE(truth != ecg::BeatClass::Unknown,
               "ConfusionMatrix: ground truth cannot be Unknown");
  ++counts_[static_cast<std::size_t>(truth)]
           [static_cast<std::size_t>(predicted)];
}

std::size_t ConfusionMatrix::count(ecg::BeatClass truth,
                                   ecg::BeatClass predicted) const {
  HBRP_REQUIRE(truth != ecg::BeatClass::Unknown,
               "ConfusionMatrix: ground truth cannot be Unknown");
  return counts_[static_cast<std::size_t>(truth)]
                [static_cast<std::size_t>(predicted)];
}

std::size_t ConfusionMatrix::total() const {
  std::size_t acc = 0;
  for (const auto& row : counts_)
    for (const std::size_t c : row) acc += c;
  return acc;
}

std::size_t ConfusionMatrix::total_normal() const {
  std::size_t acc = 0;
  for (const std::size_t c : counts_[0]) acc += c;
  return acc;
}

std::size_t ConfusionMatrix::total_abnormal() const {
  return total() - total_normal();
}

double ConfusionMatrix::ndr() const {
  const std::size_t n = total_normal();
  if (n == 0) return 0.0;
  return static_cast<double>(
             counts_[0][static_cast<std::size_t>(ecg::BeatClass::N)]) /
         static_cast<double>(n);
}

double ConfusionMatrix::arr() const {
  const std::size_t a = total_abnormal();
  if (a == 0) return 0.0;
  std::size_t recognized = 0;
  for (std::size_t truth = 1; truth < ecg::kNumClasses; ++truth)
    for (std::size_t pred = 0; pred < 4; ++pred)
      if (ecg::is_pathological(static_cast<ecg::BeatClass>(pred)))
        recognized += counts_[truth][pred];
  return static_cast<double>(recognized) / static_cast<double>(a);
}

double ConfusionMatrix::flagged_fraction() const {
  const std::size_t all = total();
  if (all == 0) return 0.0;
  std::size_t flagged = 0;
  for (std::size_t truth = 0; truth < ecg::kNumClasses; ++truth)
    for (std::size_t pred = 0; pred < 4; ++pred)
      if (ecg::is_pathological(static_cast<ecg::BeatClass>(pred)))
        flagged += counts_[truth][pred];
  return static_cast<double>(flagged) / static_cast<double>(all);
}

double ConfusionMatrix::accuracy() const {
  const std::size_t all = total();
  if (all == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < ecg::kNumClasses; ++c) correct += counts_[c][c];
  return static_cast<double>(correct) / static_cast<double>(all);
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  for (std::size_t t = 0; t < ecg::kNumClasses; ++t)
    for (std::size_t p = 0; p < 4; ++p) counts_[t][p] += other.counts_[t][p];
}

const char* to_string(AamiClass c) {
  switch (c) {
    case AamiClass::N: return "N";
    case AamiClass::S: return "S";
    case AamiClass::V: return "V";
    case AamiClass::F: return "F";
    case AamiClass::Q: return "Q";
  }
  return "?";
}

AamiClass to_aami(ecg::BeatClass c) {
  switch (c) {
    case ecg::BeatClass::N: return AamiClass::N;
    case ecg::BeatClass::L: return AamiClass::N;  // BBB is AAMI-normal
    case ecg::BeatClass::V: return AamiClass::V;
    case ecg::BeatClass::Unknown: return AamiClass::Q;
  }
  return AamiClass::Q;
}

void AamiConfusion::add(AamiClass truth, AamiClass predicted) {
  ++counts_[static_cast<std::size_t>(truth)]
           [static_cast<std::size_t>(predicted)];
}

void AamiConfusion::add_missed(AamiClass truth) {
  ++missed_[static_cast<std::size_t>(truth)];
}

void AamiConfusion::add_false_detection(AamiClass predicted) {
  ++false_[static_cast<std::size_t>(predicted)];
}

std::size_t AamiConfusion::count(AamiClass truth, AamiClass predicted) const {
  return counts_[static_cast<std::size_t>(truth)]
                [static_cast<std::size_t>(predicted)];
}

std::size_t AamiConfusion::missed(AamiClass truth) const {
  return missed_[static_cast<std::size_t>(truth)];
}

std::size_t AamiConfusion::false_detections(AamiClass predicted) const {
  return false_[static_cast<std::size_t>(predicted)];
}

std::size_t AamiConfusion::total_matched() const {
  std::size_t acc = 0;
  for (const auto& row : counts_)
    for (const std::size_t c : row) acc += c;
  return acc;
}

std::size_t AamiConfusion::total_truth() const {
  std::size_t acc = total_matched();
  for (const std::size_t m : missed_) acc += m;
  return acc;
}

double AamiConfusion::sensitivity(AamiClass c) const {
  const auto t = static_cast<std::size_t>(c);
  std::size_t truth_total = missed_[t];
  for (const std::size_t n : counts_[t]) truth_total += n;
  if (truth_total == 0) return 0.0;
  return static_cast<double>(counts_[t][t]) /
         static_cast<double>(truth_total);
}

double AamiConfusion::ppv(AamiClass c) const {
  const auto p = static_cast<std::size_t>(c);
  std::size_t pred_total = false_[p];
  for (const auto& row : counts_) pred_total += row[p];
  if (pred_total == 0) return 0.0;
  return static_cast<double>(counts_[p][p]) /
         static_cast<double>(pred_total);
}

double AamiConfusion::ndr() const {
  std::size_t matched_n = 0;
  for (const std::size_t c : counts_[0]) matched_n += c;
  if (matched_n == 0) return 0.0;
  return static_cast<double>(counts_[0][0]) /
         static_cast<double>(matched_n);
}

double AamiConfusion::arr() const {
  std::size_t abnormal = 0;
  std::size_t recognized = 0;
  for (std::size_t t = 1; t < kNumAamiClasses; ++t) {
    abnormal += missed_[t];
    for (std::size_t p = 0; p < kNumAamiClasses; ++p) {
      abnormal += counts_[t][p];
      if (is_aami_abnormal(static_cast<AamiClass>(p)))
        recognized += counts_[t][p];
    }
  }
  if (abnormal == 0) return 0.0;
  return static_cast<double>(recognized) / static_cast<double>(abnormal);
}

void AamiConfusion::merge(const AamiConfusion& other) {
  for (std::size_t t = 0; t < kNumAamiClasses; ++t) {
    missed_[t] += other.missed_[t];
    false_[t] += other.false_[t];
    for (std::size_t p = 0; p < kNumAamiClasses; ++p)
      counts_[t][p] += other.counts_[t][p];
  }
}

std::vector<OperatingPoint> pareto_front(std::vector<OperatingPoint> points) {
  // Sort by descending ARR; walk keeping points whose NDR exceeds the best
  // seen so far. Result reversed into ascending-ARR order.
  std::sort(points.begin(), points.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              if (a.arr != b.arr) return a.arr > b.arr;
              return a.ndr > b.ndr;
            });
  std::vector<OperatingPoint> front;
  double best_ndr = -1.0;
  for (const OperatingPoint& p : points) {
    if (p.ndr > best_ndr) {
      front.push_back(p);
      best_ndr = p.ndr;
    }
  }
  std::reverse(front.begin(), front.end());
  return front;
}

}  // namespace hbrp::core
