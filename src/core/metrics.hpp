// Classification figures of merit used throughout the evaluation.
//
// The paper's two headline metrics (Section IV-A):
//   NDR — Normal Discard Rate: fraction of truly normal beats classified N
//         (and therefore not transmitted / not delineated);
//   ARR — Abnormal Recognition Rate: fraction of truly abnormal (V or L)
//         beats classified V, L or Unknown, i.e. correctly routed to the
//         detailed analysis.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "ecg/types.hpp"

namespace hbrp::core {

class ConfusionMatrix {
 public:
  /// Records one beat: ground truth in {N, V, L}, prediction in
  /// {N, V, L, Unknown}.
  void add(ecg::BeatClass truth, ecg::BeatClass predicted);

  std::size_t count(ecg::BeatClass truth, ecg::BeatClass predicted) const;
  std::size_t total() const;
  std::size_t total_normal() const;
  std::size_t total_abnormal() const;

  /// Normal Discard Rate (see file comment). 0 if no normal beats seen.
  double ndr() const;
  /// Abnormal Recognition Rate. 0 if no abnormal beats seen.
  double arr() const;
  /// Fraction of all beats flagged pathological (drives gated-system duty
  /// cycle and radio payload).
  double flagged_fraction() const;
  /// Plain multi-class accuracy over assigned classes (U counts as wrong).
  double accuracy() const;

  void merge(const ConfusionMatrix& other);

 private:
  // counts_[truth 0..2][predicted 0..3]
  std::array<std::array<std::size_t, 4>, ecg::kNumClasses> counts_{};
};

/// One operating point of the NDR/ARR trade-off (Fig. 5).
struct OperatingPoint {
  double alpha = 0.0;
  double ndr = 0.0;
  double arr = 0.0;
};

/// Filters a set of operating points down to the Pareto front
/// (maximal NDR for any given ARR), sorted by ascending ARR.
std::vector<OperatingPoint> pareto_front(std::vector<OperatingPoint> points);

}  // namespace hbrp::core
