// Classification figures of merit used throughout the evaluation.
//
// The paper's two headline metrics (Section IV-A):
//   NDR — Normal Discard Rate: fraction of truly normal beats classified N
//         (and therefore not transmitted / not delineated);
//   ARR — Abnormal Recognition Rate: fraction of truly abnormal (V or L)
//         beats classified V, L or Unknown, i.e. correctly routed to the
//         detailed analysis.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "ecg/types.hpp"

namespace hbrp::core {

class ConfusionMatrix {
 public:
  /// Records one beat: ground truth in {N, V, L}, prediction in
  /// {N, V, L, Unknown}.
  void add(ecg::BeatClass truth, ecg::BeatClass predicted);

  std::size_t count(ecg::BeatClass truth, ecg::BeatClass predicted) const;
  std::size_t total() const;
  std::size_t total_normal() const;
  std::size_t total_abnormal() const;

  /// Normal Discard Rate (see file comment). 0 if no normal beats seen.
  double ndr() const;
  /// Abnormal Recognition Rate. 0 if no abnormal beats seen.
  double arr() const;
  /// Fraction of all beats flagged pathological (drives gated-system duty
  /// cycle and radio payload).
  double flagged_fraction() const;
  /// Plain multi-class accuracy over assigned classes (U counts as wrong).
  double accuracy() const;

  void merge(const ConfusionMatrix& other);

 private:
  // counts_[truth 0..2][predicted 0..3]
  std::array<std::array<std::size_t, 4>, ecg::kNumClasses> counts_{};
};

// --- AAMI EC57 inter-patient evaluation layer ---------------------------
//
// The scenario engine (src/scenario) scores adversarial replays under the
// ANSI/AAMI EC57 beat taxonomy instead of the paper's internal {N, V, L}:
//   N — normal + bundle-branch-block beats (BBB conducts from the sinus
//       node, so the paper's L class is AAMI-normal),
//   S — supraventricular ectopic (no generator source yet; kept so the
//       matrix has the standard five classes),
//   V — ventricular ectopic,
//   F — fusion of ventricular and normal,
//   Q — paced / unclassifiable (the pipeline's Unknown maps here).

enum class AamiClass : std::uint8_t { N = 0, S = 1, V = 2, F = 3, Q = 4 };

inline constexpr std::size_t kNumAamiClasses = 5;

const char* to_string(AamiClass c);

/// Maps a pipeline prediction onto the AAMI taxonomy: N -> N, L -> N
/// (BBB is AAMI-normal), V -> V, Unknown -> Q. The pipeline never
/// *predicts* S or F; those appear only as scenario ground truth.
AamiClass to_aami(ecg::BeatClass c);

/// True when an AAMI class activates the detailed analysis (everything
/// except plain normal).
constexpr bool is_aami_abnormal(AamiClass c) { return c != AamiClass::N; }

/// 5x5 AAMI confusion matrix with explicit detection-failure accounting:
/// a truth beat the detector never produced a prediction for is a miss
/// (it still counts against sensitivity, per EC57), and a prediction with
/// no matching truth beat is a false detection (counts against PPV).
class AamiConfusion {
 public:
  void add(AamiClass truth, AamiClass predicted);
  void add_missed(AamiClass truth);
  void add_false_detection(AamiClass predicted);

  std::size_t count(AamiClass truth, AamiClass predicted) const;
  std::size_t missed(AamiClass truth) const;
  std::size_t false_detections(AamiClass predicted) const;

  /// Matched beats (excludes misses and false detections).
  std::size_t total_matched() const;
  /// All truth beats: matched + missed.
  std::size_t total_truth() const;

  /// Recall of `c` over all truth-`c` beats including missed ones;
  /// 0 if the scenario contains no such beats.
  double sensitivity(AamiClass c) const;
  /// Precision of `c` over all `c` predictions including false
  /// detections; 0 if the class was never predicted.
  double ppv(AamiClass c) const;

  /// The paper's headline pair lifted onto the AAMI taxonomy: NDR is the
  /// fraction of truth-N beats predicted N, ARR the fraction of truth
  /// S/V/F/Q beats routed to the detailed analysis. Missed beats count
  /// in neither numerator (a missed beat was neither discarded as normal
  /// nor escalated) but ARR's denominator includes missed abnormal beats
  /// — an abnormal beat the detector lost is a recognition failure.
  double ndr() const;
  double arr() const;

  void merge(const AamiConfusion& other);

 private:
  std::array<std::array<std::size_t, kNumAamiClasses>, kNumAamiClasses>
      counts_{};
  std::array<std::size_t, kNumAamiClasses> missed_{};
  std::array<std::size_t, kNumAamiClasses> false_{};
};

/// One operating point of the NDR/ARR trade-off (Fig. 5).
struct OperatingPoint {
  double alpha = 0.0;
  double ndr = 0.0;
  double arr = 0.0;
};

/// Filters a set of operating points down to the Pareto front
/// (maximal NDR for any given ARR), sorted by ascending ARR.
std::vector<OperatingPoint> pareto_front(std::vector<OperatingPoint> points);

}  // namespace hbrp::core
