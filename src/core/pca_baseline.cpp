#include "core/pca_baseline.hpp"

#include "dsp/resample.hpp"
#include "math/check.hpp"

namespace hbrp::core {

math::Mat dataset_matrix(const ecg::BeatDataset& ds, std::size_t downsample) {
  HBRP_REQUIRE(!ds.beats.empty(), "dataset_matrix(): empty dataset");
  HBRP_REQUIRE(ds.window_size() % downsample == 0,
               "dataset_matrix(): window not divisible by downsample");
  const std::size_t d = ds.window_size() / downsample;
  math::Mat out(ds.beats.size(), d);
  for (std::size_t i = 0; i < ds.beats.size(); ++i) {
    const dsp::Signal w = dsp::downsample_avg(ds.beats[i].samples, downsample);
    for (std::size_t c = 0; c < d; ++c)
      out.at(i, c) = static_cast<double>(w[c]);
  }
  return out;
}

PcaClassifier train_pca_baseline(const ecg::BeatDataset& ts1,
                                 const ecg::BeatDataset& ts2,
                                 const PcaBaselineConfig& cfg) {
  const math::Mat x1 = dataset_matrix(ts1, cfg.downsample);
  PcaClassifier cls{math::Pca::fit(x1, cfg.coefficients),
                    nfc::NeuroFuzzyClassifier(cfg.coefficients), 0.0,
                    cfg.downsample};

  ProjectedDataset d1;
  d1.u = cls.pca.transform(x1);
  d1.labels.reserve(ts1.beats.size());
  for (const auto& b : ts1.beats) d1.labels.push_back(b.label);
  nfc::train(cls.nfc, d1.u, d1.labels, cfg.nfc_train);

  const ProjectedDataset d2 = project_dataset(ts2, cls);
  cls.alpha_train = calibrate_alpha(cls.nfc, d2, cfg.min_arr);
  return cls;
}

ProjectedDataset project_dataset(const ecg::BeatDataset& ds,
                                 const PcaClassifier& cls) {
  ProjectedDataset out;
  out.u = cls.pca.transform(dataset_matrix(ds, cls.downsample));
  out.labels.reserve(ds.beats.size());
  for (const auto& b : ds.beats) out.labels.push_back(b.label);
  return out;
}

}  // namespace hbrp::core
