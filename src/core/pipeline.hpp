// The complete WBSN application (paper Fig. 6, system (3)).
//
// Per record: the reference lead is conditioned (morphological filtering)
// and the wavelet peak detector isolates beats; each beat window is
// classified by the embedded RP + integer-NFC classifier; beats flagged
// pathological (V, L or Unknown) — and only those — trigger conditioning of
// the remaining leads and the three-lead MMD delineation. The result carries
// everything the platform/energy models need: per-beat decisions, the
// flagged fraction, and the fiducial points for flagged beats.
#pragma once

#include <span>
#include <vector>

#include "core/executor.hpp"
#include "delineation/mmd.hpp"
#include "dsp/morphology.hpp"
#include "dsp/peak_detect.hpp"
#include "ecg/types.hpp"
#include "embedded/bundle.hpp"

namespace hbrp::core {

struct PipelineConfig {
  std::size_t window_before = 100;
  std::size_t window_after = 100;
  dsp::FilterConfig filter = dsp::FilterConfig::for_rate(dsp::kMitBihFs);
  dsp::PeakDetectorConfig peak;
  delineation::DelineatorConfig delineator;
  /// When false the delineation stage is always on (sub-system (2) mode,
  /// the paper's baseline for Table III).
  bool gate_delineation = true;
};

struct PipelineBeat {
  std::size_t r_peak = 0;
  ecg::BeatClass predicted = ecg::BeatClass::N;
  bool delineated = false;
  ecg::Fiducials fiducials;  ///< valid only when `delineated`
};

struct PipelineResult {
  std::vector<PipelineBeat> beats;

  std::size_t flagged_count() const;
  double flagged_fraction() const;
};

class RealTimePipeline {
 public:
  RealTimePipeline(embedded::EmbeddedClassifier classifier,
                   PipelineConfig cfg = {});

  /// Runs the full chain over a multi-lead record.
  PipelineResult process(const ecg::Record& record) const;

  /// Runs process() over every record, fanning the records out across the
  /// executor when one is supplied. Each record's result lands in its own
  /// slot, so the output is identical to a serial loop for any thread count.
  std::vector<PipelineResult> process_all(
      std::span<const ecg::Record> records,
      const Executor* executor = nullptr) const;

  const embedded::EmbeddedClassifier& classifier() const {
    return classifier_;
  }
  const PipelineConfig& config() const { return cfg_; }

 private:
  embedded::EmbeddedClassifier classifier_;
  PipelineConfig cfg_;
};

}  // namespace hbrp::core
