// The paper's complete two-step training framework (Fig. 2, top).
//
// Step 1 (inner): given a candidate projection matrix P, project training
// set 1, fit the NFC's Gaussian MFs by scaled conjugate gradient.
// Step 2 (outer): score P as the NDR the trained NFC achieves on training
// set 2 at the smallest alpha_train reaching the ARR constraint (>= 97% by
// default); a genetic algorithm (population 20, 30 generations) evolves P
// under this fitness.
//
// The calibration of alpha is exact, not searched: for each beat the
// critical alpha at which its decision flips to Unknown is (M1 - M2) / S,
// so the smallest alpha meeting an ARR target is an order statistic of the
// critical alphas of the abnormal beats currently misclassified as N.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch.hpp"
#include "core/executor.hpp"
#include "core/metrics.hpp"
#include "drift/tracker.hpp"
#include "ecg/dataset.hpp"
#include "embedded/bundle.hpp"
#include "math/mat.hpp"
#include "nfc/classifier.hpp"
#include "nfc/train.hpp"
#include "opt/ga.hpp"
#include "rp/projector.hpp"

namespace hbrp::core {

/// A dataset after projection: one row of coefficients per beat.
struct ProjectedDataset {
  math::Mat u;                           // beats x coefficients
  std::vector<ecg::BeatClass> labels;
};

/// Projects every beat window of `ds` through `projector` (float path).
ProjectedDataset project_dataset(const ecg::BeatDataset& ds,
                                 const rp::BeatProjector& projector);

/// Batch-engine form: projects a contiguous BeatBatch arena in one sweep
/// (rp::BeatProjector::project_batch; no per-beat allocation).
ProjectedDataset project_dataset(const BeatBatch& batch,
                                 const rp::BeatProjector& projector);

/// Evaluates a float NFC at threshold `alpha` over a projected dataset.
/// With an executor, beats are scored in parallel chunks whose partial
/// confusion matrices merge in chunk order — the result is identical to a
/// serial run for any thread count.
ConfusionMatrix evaluate(const nfc::NeuroFuzzyClassifier& nfc,
                         const ProjectedDataset& data, double alpha,
                         const Executor* executor = nullptr);

/// Evaluates an integer classifier at `alpha_q16` over beat windows
/// (runs the full embedded path: downsample, packed projection, int NFC).
ConfusionMatrix evaluate_embedded(const embedded::EmbeddedClassifier& cls,
                                  const ecg::BeatDataset& ds);

/// Batch-engine form over a contiguous BeatBatch, optionally parallel.
/// Bit-identical to the per-beat form for any thread count.
ConfusionMatrix evaluate_embedded(const embedded::EmbeddedClassifier& cls,
                                  const BeatBatch& batch,
                                  const Executor* executor = nullptr);

/// Smallest alpha such that ARR >= min_arr on `data` (1.0 if unreachable).
/// Exports the drift tracker's reference frame at model-build time: one
/// centroid per beat class present in `ds`, computed over the classifier's
/// own integer projections (the exact space observe() sees at runtime),
/// plus the within-class RMS sigma that normalizes every tracker
/// threshold. Use the training split (ts1) — the tracker's notion of
/// "looks like training data" should match what the NFC was fit on.
drift::TrainingCentroids compute_training_centroids(
    const embedded::EmbeddedClassifier& cls, const ecg::BeatDataset& ds);

double calibrate_alpha(const nfc::NeuroFuzzyClassifier& nfc,
                       const ProjectedDataset& data, double min_arr);

struct TwoStepConfig {
  std::size_t coefficients = 8;
  std::size_t downsample = 4;
  /// ARR constraint used for alpha_train calibration (paper: 97%).
  double min_arr = 0.97;
  nfc::TrainOptions nfc_train;
  opt::GaOptions ga;  // paper defaults: population 20, 30 generations
  std::uint64_t seed = 1;
  /// Executor threads for the GA's candidate fitness evaluations during
  /// run(). 0 = hardware concurrency, 1 = fully serial. The trained model
  /// and every metric are bit-identical for any value (see core::Executor).
  std::size_t threads = 0;
};

/// The trained artefact of the framework.
struct TrainedClassifier {
  rp::BeatProjector projector;
  nfc::NeuroFuzzyClassifier nfc;
  double alpha_train = 0.0;

  /// Quantizes into the deployable embedded form at threshold alpha_test
  /// (defaults to alpha_train).
  embedded::EmbeddedClassifier quantize(
      embedded::MfShape shape = embedded::MfShape::Linearized,
      double alpha_test = -1.0) const;
};

class TwoStepTrainer {
 public:
  /// ts1/ts2 per Table I; both must use the same window geometry.
  TwoStepTrainer(const ecg::BeatDataset& ts1, const ecg::BeatDataset& ts2,
                 TwoStepConfig cfg);

  /// Trains the NFC for one fixed projection and calibrates alpha on ts2.
  TrainedClassifier train_with_projection(const rp::TernaryMatrix& p) const;

  /// Fitness of a candidate projection (NDR on ts2 at the calibrated alpha).
  double fitness(const rp::TernaryMatrix& p) const;

  /// Full two-step optimization: GA over projections, returns the winner.
  TrainedClassifier run() const;

  /// GA convergence history of the last run() (best fitness per generation).
  const std::vector<double>& last_history() const { return history_; }

 private:
  const ecg::BeatDataset& ts1_;
  const ecg::BeatDataset& ts2_;
  // Both splits copied once into contiguous arenas; every candidate
  // evaluation then runs the batched, allocation-free path over them.
  BeatBatch batch1_;
  BeatBatch batch2_;
  TwoStepConfig cfg_;
  mutable std::vector<double> history_;
};

}  // namespace hbrp::core
