// Deterministic parallel execution for the evaluation engine.
//
// A fixed pool of worker threads plus the calling thread cooperatively run
// index-addressed jobs: parallel_for(n, fn) invokes fn(i) exactly once for
// every i in [0, n), in an unspecified interleaving, on an unspecified
// thread. Determinism is therefore a *protocol*, not a scheduler property:
// every fn used in this library (GA fitness evaluation, dataset projection,
// batch metric computation, multi-record pipeline runs) writes only to the
// slot addressed by its own index and draws no randomness — all RNG streams
// are advanced on the serial control thread before the fan-out (see
// opt::optimize_projection, which breeds offspring serially and only scores
// them in parallel). Under that discipline the results are bit-identical
// for any thread count, including 1.
//
// Scheduling is chunked self-serve (an atomic cursor over fixed-size index
// ranges), so an expensive item does not stall the whole pool the way static
// striping would. Nested parallel_for calls (a worker evaluating a GA
// candidate that itself evaluates a dataset) are detected via a thread-local
// flag and run inline on the calling worker — no deadlock, no oversubscription.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hbrp::core {

class Executor {
 public:
  /// `threads` is the total evaluation concurrency, counting the calling
  /// thread: 1 means fully serial (no workers are spawned), N spawns N - 1
  /// workers. 0 picks the hardware concurrency.
  explicit Executor(std::size_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Total concurrency, including the calling thread (>= 1).
  std::size_t threads() const { return threads_; }

  /// Invokes fn(i) exactly once for each i in [0, n); returns when all have
  /// completed. The first exception thrown by any fn is rethrown on the
  /// calling thread (remaining items still run to completion). Safe to call
  /// concurrently from several threads (jobs are serialized) and reentrantly
  /// from inside a worker (the nested call runs inline, serially).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) const;

  /// Number of threads an `Executor(0)` would use on this machine.
  static std::size_t hardware_threads();

 private:
  struct Job;
  void worker_loop();
  static void run_chunks(Job& job);

  std::size_t threads_ = 1;
  mutable std::mutex submit_mutex_;  // one job in flight at a time

  // Pool state guarded by mutex_.
  mutable std::mutex mutex_;
  mutable std::condition_variable wake_;
  mutable std::condition_variable done_;
  mutable Job* job_ = nullptr;  // non-null while a job is being executed
  mutable std::uint64_t generation_ = 0;  // bumped once per submitted job
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hbrp::core
