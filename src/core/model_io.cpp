#include "core/model_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "math/check.hpp"
#include "math/crc32.hpp"
#include "math/endian.hpp"

namespace hbrp::core {

namespace {

// Format v2 layout (all multi-byte fields explicitly little-endian via
// math/endian.hpp — the same audited codec net/wire frames use):
//   magic "HBRPMD02" (8 bytes)
//   u32 payload_size | u32 crc32(payload)
//   payload: u32 rows | u32 cols | u32 downsample | rows*cols int8 matrix
//            | rows*kNumClasses {double center, double sigma} | double alpha
// The CRC covers the whole payload, so any single corrupted byte anywhere
// in the file is either caught by the magic/size check or by the checksum
// before any length field is trusted. payload_size must match the size
// recomputed from the header fields exactly, so an inflated length field
// can never drive an allocation.
constexpr char kMagic[8] = {'H', 'B', 'R', 'P', 'M', 'D', '0', '2'};

// Sanity bounds far above any model this library trains (k <= 32, d <= 200)
// but small enough that a corrupt header cannot demand gigabytes.
constexpr std::uint32_t kMaxRows = 4096;
constexpr std::uint32_t kMaxCols = 65536;
constexpr std::uint32_t kMaxDownsample = 4096;
constexpr std::size_t kMaxFileBytes = std::size_t{1} << 28;

template <typename T>
void put(std::string& out, T value) {
  math::append_le(out, value);
}

std::size_t payload_size_for(std::size_t rows, std::size_t cols) {
  return 3 * sizeof(std::uint32_t) + rows * cols +
         rows * ecg::kNumClasses * 2 * sizeof(double) + sizeof(double);
}

}  // namespace

void save_model(const TrainedClassifier& model,
                const std::filesystem::path& path) {
  const rp::TernaryMatrix& p = model.projector.matrix();
  const std::size_t k = model.nfc.coefficients();
  HBRP_REQUIRE(k == p.rows(), "model_io: inconsistent model");

  std::string payload;
  payload.reserve(payload_size_for(p.rows(), p.cols()));
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(p.rows()));
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(p.cols()));
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(
                                  model.projector.downsample_factor()));
  for (std::size_t r = 0; r < p.rows(); ++r)
    for (std::size_t c = 0; c < p.cols(); ++c)
      put<std::int8_t>(payload, p.at(r, c));
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
      const nfc::GaussianMF& m = model.nfc.mf(i, l);
      put<double>(payload, m.center);
      put<double>(payload, m.sigma);
    }
  put<double>(payload, model.alpha_train);

  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());

  // Atomic publish: write the complete image to a sibling temp file, then
  // rename over the destination. A crash mid-save leaves either the old
  // model or no model — never a truncated one.
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    HBRP_REQUIRE(out.good(),
                 "model_io: cannot open for write: " + tmp.string());
    out.write(kMagic, sizeof(kMagic));
    std::string header;
    put<std::uint32_t>(header, static_cast<std::uint32_t>(payload.size()));
    put<std::uint32_t>(header,
                       math::crc32(payload.data(), payload.size()));
    out.write(header.data(),
              static_cast<std::streamsize>(header.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    HBRP_REQUIRE(out.good(), "model_io: write failure: " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp);
    HBRP_REQUIRE(false, "model_io: cannot publish " + path.string() + ": " +
                            ec.message());
  }
}

TrainedClassifier load_model(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  HBRP_REQUIRE(in.good(), "model_io: cannot open: " + path.string());

  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  HBRP_REQUIRE(!ec, "model_io: cannot stat: " + path.string());
  constexpr std::size_t kHeaderBytes =
      sizeof(kMagic) + 2 * sizeof(std::uint32_t);
  HBRP_REQUIRE(file_size >= kHeaderBytes && file_size <= kMaxFileBytes,
               "model_io: implausible file size in " + path.string());

  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  HBRP_REQUIRE(in.good() && std::equal(magic, magic + sizeof(kMagic), kMagic),
               "model_io: bad magic in " + path.string());

  unsigned char sizes[2 * sizeof(std::uint32_t)];
  in.read(reinterpret_cast<char*>(sizes), sizeof(sizes));
  HBRP_REQUIRE(in.good(), "model_io: truncated header in " + path.string());
  const auto declared = math::load_le<std::uint32_t>(sizes);
  const auto crc_stored =
      math::load_le<std::uint32_t>(sizes + sizeof(std::uint32_t));
  HBRP_REQUIRE(declared == file_size - kHeaderBytes,
               "model_io: payload size mismatch in " + path.string());

  std::string payload(declared, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  HBRP_REQUIRE(in.good(), "model_io: truncated payload in " + path.string());
  HBRP_REQUIRE(math::crc32(payload.data(), payload.size()) == crc_stored,
               "model_io: checksum mismatch in " + path.string());

  math::ByteReader r(payload.data(), payload.size());
  const auto rows = r.get<std::uint32_t>();
  const auto cols = r.get<std::uint32_t>();
  const auto downsample = r.get<std::uint32_t>();
  HBRP_REQUIRE(rows >= 1 && rows <= kMaxRows && cols >= 1 &&
                   cols <= kMaxCols && downsample >= 1 &&
                   downsample <= kMaxDownsample,
               "model_io: malformed header");
  HBRP_REQUIRE(payload.size() == payload_size_for(rows, cols),
               "model_io: length fields inconsistent with payload");

  rp::TernaryMatrix p(rows, cols);
  for (std::size_t row = 0; row < rows; ++row)
    for (std::size_t c = 0; c < cols; ++c)
      p.set(row, c, r.get<std::int8_t>());  // set() validates {-1, 0, 1}

  nfc::NeuroFuzzyClassifier classifier(rows);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
      nfc::GaussianMF m;
      m.center = r.get<double>();
      m.sigma = r.get<double>();
      HBRP_REQUIRE(std::isfinite(m.center) && std::isfinite(m.sigma) &&
                       m.sigma > 0.0,
                   "model_io: invalid membership function");
      classifier.mf(i, l) = m;
    }
  const double alpha = r.get<double>();
  HBRP_REQUIRE(std::isfinite(alpha) && alpha >= 0.0 && alpha <= 1.0,
               "model_io: alpha out of range");
  HBRP_REQUIRE(r.remaining() == 0, "model_io: trailing bytes in payload");

  return TrainedClassifier{rp::BeatProjector(std::move(p), downsample),
                           std::move(classifier), alpha};
}

}  // namespace hbrp::core
