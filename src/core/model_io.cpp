#include "core/model_io.hpp"

#include <fstream>

#include "math/check.hpp"

namespace hbrp::core {

namespace {

constexpr char kMagic[8] = {'H', 'B', 'R', 'P', 'M', 'D', '0', '1'};

template <typename T>
void put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  HBRP_REQUIRE(in.good(), "model_io: truncated file");
  return value;
}

}  // namespace

void save_model(const TrainedClassifier& model,
                const std::filesystem::path& path) {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  HBRP_REQUIRE(out.good(), "model_io: cannot open for write: " + path.string());
  out.write(kMagic, sizeof(kMagic));

  const rp::TernaryMatrix& p = model.projector.matrix();
  put<std::uint32_t>(out, static_cast<std::uint32_t>(p.rows()));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(p.cols()));
  put<std::uint32_t>(out,
                     static_cast<std::uint32_t>(
                         model.projector.downsample_factor()));
  for (std::size_t r = 0; r < p.rows(); ++r)
    for (std::size_t c = 0; c < p.cols(); ++c)
      put<std::int8_t>(out, p.at(r, c));

  const std::size_t k = model.nfc.coefficients();
  HBRP_REQUIRE(k == p.rows(), "model_io: inconsistent model");
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
      const nfc::GaussianMF& m = model.nfc.mf(i, l);
      put<double>(out, m.center);
      put<double>(out, m.sigma);
    }
  put<double>(out, model.alpha_train);
  HBRP_REQUIRE(out.good(), "model_io: write failure: " + path.string());
}

TrainedClassifier load_model(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  HBRP_REQUIRE(in.good(), "model_io: cannot open: " + path.string());
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  HBRP_REQUIRE(in.good() && std::equal(magic, magic + sizeof(kMagic), kMagic),
               "model_io: bad magic in " + path.string());

  const auto rows = get<std::uint32_t>(in);
  const auto cols = get<std::uint32_t>(in);
  const auto downsample = get<std::uint32_t>(in);
  HBRP_REQUIRE(rows >= 1 && cols >= 1 && downsample >= 1,
               "model_io: malformed header");
  rp::TernaryMatrix p(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      p.set(r, c, get<std::int8_t>(in));  // set() validates {-1, 0, 1}

  nfc::NeuroFuzzyClassifier classifier(rows);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
      nfc::GaussianMF m;
      m.center = get<double>(in);
      m.sigma = get<double>(in);
      HBRP_REQUIRE(m.sigma > 0.0, "model_io: non-positive sigma");
      classifier.mf(i, l) = m;
    }
  const double alpha = get<double>(in);
  HBRP_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "model_io: alpha out of range");

  return TrainedClassifier{rp::BeatProjector(std::move(p), downsample),
                           std::move(classifier), alpha};
}

}  // namespace hbrp::core
