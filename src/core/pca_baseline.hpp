// PCA dimensionality-reduction baseline (Table II, row "PCA-PC").
//
// The comparison point of Ceylan & Ozbay 2007: instead of a random
// projection, beats are projected onto the top-k principal components of
// the training data. Everything downstream (NFC, SCG training, alpha
// calibration) is identical to the RP path, so the table isolates the
// effect of the dimensionality-reduction choice. PCA requires k x d
// floating-point multiplies per beat — the computational cost the paper
// argues a WBSN cannot afford, which is why this baseline exists only on
// the "PC" side.
#pragma once

#include "core/trainer.hpp"
#include "math/pca.hpp"

namespace hbrp::core {

/// Downsamples every window and stacks them as rows (the input format of
/// the PCA fit and transform).
math::Mat dataset_matrix(const ecg::BeatDataset& ds, std::size_t downsample);

struct PcaClassifier {
  math::Pca pca;
  nfc::NeuroFuzzyClassifier nfc;
  double alpha_train = 0.0;
  std::size_t downsample = 4;
};

struct PcaBaselineConfig {
  std::size_t coefficients = 8;
  std::size_t downsample = 4;
  double min_arr = 0.97;
  nfc::TrainOptions nfc_train;
};

/// Fits PCA on ts1, trains the NFC on ts1 scores, calibrates alpha on ts2.
PcaClassifier train_pca_baseline(const ecg::BeatDataset& ts1,
                                 const ecg::BeatDataset& ts2,
                                 const PcaBaselineConfig& cfg = {});

/// Projects a dataset through the fitted PCA (labels carried over).
ProjectedDataset project_dataset(const ecg::BeatDataset& ds,
                                 const PcaClassifier& cls);

}  // namespace hbrp::core
