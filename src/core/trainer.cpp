#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "math/check.hpp"
#include "math/fixed.hpp"

namespace hbrp::core {

namespace {

// Splits [0, n) into roughly even contiguous ranges, one per chunk; chunk
// boundaries depend only on (n, chunks), never on scheduling, so partial
// results always merge in the same order.
struct ChunkPlan {
  std::size_t n = 0;
  std::size_t chunks = 1;

  ChunkPlan(std::size_t total, const Executor* executor)
      : n(total),
        chunks(executor == nullptr || executor->threads() <= 1
                   ? 1
                   : std::min<std::size_t>(std::max<std::size_t>(total, 1),
                                           executor->threads() * 4)) {}

  std::size_t begin(std::size_t c) const { return c * n / chunks; }
  std::size_t end(std::size_t c) const { return (c + 1) * n / chunks; }
};

}  // namespace

ProjectedDataset project_dataset(const ecg::BeatDataset& ds,
                                 const rp::BeatProjector& projector) {
  HBRP_REQUIRE(!ds.beats.empty(), "project_dataset(): empty dataset");
  HBRP_REQUIRE(ds.window_size() == projector.expected_window(),
               "project_dataset(): window/projector size mismatch");
  ProjectedDataset out;
  out.u = math::Mat(ds.beats.size(), projector.coefficients());
  out.labels.reserve(ds.beats.size());
  rp::ProjectionScratch scratch;
  for (std::size_t i = 0; i < ds.beats.size(); ++i) {
    projector.project_into(ds.beats[i].samples, out.u.row(i), scratch);
    out.labels.push_back(ds.beats[i].label);
  }
  return out;
}

ProjectedDataset project_dataset(const BeatBatch& batch,
                                 const rp::BeatProjector& projector) {
  HBRP_REQUIRE(!batch.empty(), "project_dataset(): empty batch");
  HBRP_REQUIRE(batch.window_length() == projector.expected_window(),
               "project_dataset(): window/projector size mismatch");
  ProjectedDataset out;
  out.u = math::Mat(batch.size(), projector.coefficients());
  out.labels.assign(batch.labels().begin(), batch.labels().end());
  rp::ProjectionScratch scratch;
  projector.project_batch(batch.windows(), batch.size(), out.u.flat(),
                          scratch);
  return out;
}

ConfusionMatrix evaluate(const nfc::NeuroFuzzyClassifier& nfc,
                         const ProjectedDataset& data, double alpha,
                         const Executor* executor) {
  const std::size_t k = data.u.cols();
  const ChunkPlan plan(data.u.rows(), executor);
  if (plan.chunks == 1) {
    std::vector<ecg::BeatClass> decisions(data.u.rows());
    nfc.classify_batch(data.u.flat(), data.u.rows(), alpha, decisions);
    ConfusionMatrix cm;
    for (std::size_t i = 0; i < data.u.rows(); ++i)
      cm.add(data.labels[i], decisions[i]);
    return cm;
  }
  std::vector<ConfusionMatrix> parts(plan.chunks);
  executor->parallel_for(plan.chunks, [&](std::size_t c) {
    const std::size_t begin = plan.begin(c);
    const std::size_t count = plan.end(c) - begin;
    if (count == 0) return;
    std::vector<ecg::BeatClass> decisions(count);
    nfc.classify_batch(data.u.flat().subspan(begin * k, count * k), count,
                       alpha, decisions);
    for (std::size_t i = 0; i < count; ++i)
      parts[c].add(data.labels[begin + i], decisions[i]);
  });
  ConfusionMatrix cm;
  for (const ConfusionMatrix& part : parts) cm.merge(part);
  return cm;
}

ConfusionMatrix evaluate_embedded(const embedded::EmbeddedClassifier& cls,
                                  const ecg::BeatDataset& ds) {
  ConfusionMatrix cm;
  rp::ProjectionScratch scratch;
  std::vector<std::int32_t> u(cls.projector().coefficients());
  for (const ecg::BeatWindow& b : ds.beats) {
    cls.projector().project_int_into(b.samples, u, scratch);
    cm.add(b.label, cls.classifier().classify(u, cls.alpha_q16()));
  }
  return cm;
}

ConfusionMatrix evaluate_embedded(const embedded::EmbeddedClassifier& cls,
                                  const BeatBatch& batch,
                                  const Executor* executor) {
  const std::size_t w = batch.window_length();
  const ChunkPlan plan(batch.size(), executor);
  if (plan.chunks == 1) {
    embedded::ClassifyScratch scratch;
    std::vector<ecg::BeatClass> decisions(batch.size());
    cls.classify_batch(batch.windows(), batch.size(), decisions, scratch);
    ConfusionMatrix cm;
    for (std::size_t i = 0; i < batch.size(); ++i)
      cm.add(batch.label(i), decisions[i]);
    return cm;
  }
  std::vector<ConfusionMatrix> parts(plan.chunks);
  executor->parallel_for(plan.chunks, [&](std::size_t c) {
    const std::size_t begin = plan.begin(c);
    const std::size_t count = plan.end(c) - begin;
    if (count == 0) return;
    embedded::ClassifyScratch scratch;
    std::vector<ecg::BeatClass> decisions(count);
    cls.classify_batch(batch.windows().subspan(begin * w, count * w), count,
                       decisions, scratch);
    for (std::size_t i = 0; i < count; ++i)
      parts[c].add(batch.label(begin + i), decisions[i]);
  });
  ConfusionMatrix cm;
  for (const ConfusionMatrix& part : parts) cm.merge(part);
  return cm;
}

double calibrate_alpha(const nfc::NeuroFuzzyClassifier& nfc,
                       const ProjectedDataset& data, double min_arr) {
  HBRP_REQUIRE(min_arr > 0.0 && min_arr <= 1.0,
               "calibrate_alpha(): min_arr must be in (0, 1]");
  std::size_t abnormal_total = 0;
  std::size_t recognized_at_zero = 0;
  // Critical alphas of abnormal beats whose argmax is N: the beat flips to
  // Unknown (recognized) once alpha exceeds its margin (M1 - M2) / S.
  std::vector<double> critical;
  for (std::size_t i = 0; i < data.u.rows(); ++i) {
    if (data.labels[i] == ecg::BeatClass::N) continue;
    ++abnormal_total;
    const nfc::FuzzyValues f = nfc.fuzzy(data.u.row(i));
    const ecg::BeatClass at_zero = nfc::defuzzify(f, 0.0);
    if (ecg::is_pathological(at_zero)) {
      ++recognized_at_zero;
      continue;
    }
    double m1 = f[0], m2 = -1.0, sum = 0.0;
    std::size_t best = 0;
    for (std::size_t l = 1; l < f.size(); ++l)
      if (f[l] > f[best]) best = l;
    m1 = f[best];
    for (std::size_t l = 0; l < f.size(); ++l) {
      sum += f[l];
      if (l != best) m2 = std::max(m2, f[l]);
    }
    critical.push_back(sum > 0.0 ? (m1 - m2) / sum : 0.0);
  }
  HBRP_REQUIRE(abnormal_total > 0,
               "calibrate_alpha(): dataset has no abnormal beats");

  const auto needed = static_cast<std::size_t>(
      std::ceil(min_arr * static_cast<double>(abnormal_total)));
  if (recognized_at_zero >= needed) return 0.0;
  const std::size_t flip = needed - recognized_at_zero;
  if (flip > critical.size()) return 1.0;  // unreachable even at alpha = 1

  std::sort(critical.begin(), critical.end());
  // Alpha just above the flip-th smallest margin converts exactly those
  // beats to Unknown.
  const double alpha = std::nextafter(critical[flip - 1], 2.0) + 1e-12;
  return std::min(alpha, 1.0);
}

embedded::EmbeddedClassifier TrainedClassifier::quantize(
    embedded::MfShape shape, double alpha_test) const {
  const double alpha = alpha_test < 0.0 ? alpha_train : alpha_test;
  return embedded::EmbeddedClassifier(
      projector, embedded::IntClassifier::from_float(nfc, shape),
      math::to_q16(alpha));
}

TwoStepTrainer::TwoStepTrainer(const ecg::BeatDataset& ts1,
                               const ecg::BeatDataset& ts2, TwoStepConfig cfg)
    : ts1_(ts1),
      ts2_(ts2),
      batch1_(BeatBatch::from_dataset(ts1)),
      batch2_(BeatBatch::from_dataset(ts2)),
      cfg_(std::move(cfg)) {
  HBRP_REQUIRE(ts1.window_size() == ts2.window_size(),
               "TwoStepTrainer: split window geometry mismatch");
  HBRP_REQUIRE(ts1.window_size() % cfg_.downsample == 0,
               "TwoStepTrainer: window not divisible by downsample factor");
  HBRP_REQUIRE(cfg_.coefficients >= 1, "TwoStepTrainer: coefficients >= 1");
}

TrainedClassifier TwoStepTrainer::train_with_projection(
    const rp::TernaryMatrix& p) const {
  rp::BeatProjector projector(p, cfg_.downsample);
  const ProjectedDataset d1 = project_dataset(batch1_, projector);
  nfc::NeuroFuzzyClassifier classifier(cfg_.coefficients);
  nfc::train(classifier, d1.u, d1.labels, cfg_.nfc_train);
  const ProjectedDataset d2 = project_dataset(batch2_, projector);
  const double alpha = calibrate_alpha(classifier, d2, cfg_.min_arr);
  return TrainedClassifier{std::move(projector), std::move(classifier),
                           alpha};
}

drift::TrainingCentroids compute_training_centroids(
    const embedded::EmbeddedClassifier& cls, const ecg::BeatDataset& ds) {
  HBRP_REQUIRE(!ds.beats.empty(),
               "compute_training_centroids: empty dataset");
  HBRP_REQUIRE(ds.window_size() == cls.projector().expected_window(),
               "compute_training_centroids: window geometry mismatch");
  const std::size_t k = cls.projector().coefficients();

  // One accumulator per BeatClass value; classes absent from the dataset
  // simply export no centroid.
  constexpr std::size_t kClasses = 4;
  std::vector<std::vector<double>> sum(kClasses,
                                       std::vector<double>(k, 0.0));
  std::vector<std::vector<double>> sumsq(kClasses,
                                         std::vector<double>(k, 0.0));
  std::vector<double> count(kClasses, 0.0);

  rp::ProjectionScratch scratch;
  std::vector<std::int32_t> u(k);
  for (const auto& beat : ds.beats) {
    cls.projector().project_int_into(beat.samples, u, scratch);
    const auto c = static_cast<std::size_t>(beat.label);
    count[c] += 1.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double x = static_cast<double>(u[i]);
      sum[c][i] += x;
      sumsq[c][i] += x * x;
    }
  }

  drift::TrainingCentroids out;
  out.coefficients = k;
  double var_acc = 0.0;
  double var_n = 0.0;
  for (std::size_t c = 0; c < kClasses; ++c) {
    if (count[c] == 0.0) continue;
    drift::TrainingCentroids::Centroid centroid;
    centroid.mean.resize(k);
    centroid.mass = count[c];
    double class_var = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double mean = sum[c][i] / count[c];
      centroid.mean[i] = mean;
      const double var = sumsq[c][i] / count[c] - mean * mean;
      class_var += var;
      var_acc += var;
      var_n += 1.0;
    }
    // This class's own RMS sigma across coefficients: the unit the
    // tracker's novelty distance to this centroid is measured in, so a
    // naturally wide class (V spans far more of RP space than N) is not
    // judged by the narrow classes' yardstick. Same degenerate-data floor
    // as the global scale below.
    centroid.sigma = std::max(
        1.0, std::sqrt(std::max(0.0, class_var / static_cast<double>(k))));
    out.centroids.push_back(std::move(centroid));
  }
  // Within-class RMS sigma over every (class, coefficient) pair: the unit
  // the tracker's thresholds are expressed in. Floored at 1 so a
  // degenerate dataset cannot produce a zero/NaN normalizer (integer
  // projections have sigma >> 1 in practice).
  out.scale = std::max(1.0, std::sqrt(std::max(0.0, var_acc / var_n)));
  return out;
}

double TwoStepTrainer::fitness(const rp::TernaryMatrix& p) const {
  const TrainedClassifier trained = train_with_projection(p);
  const ProjectedDataset d2 = project_dataset(batch2_, trained.projector);
  return evaluate(trained.nfc, d2, trained.alpha_train).ndr();
}

TrainedClassifier TwoStepTrainer::run() const {
  const std::size_t d = ts1_.window_size() / cfg_.downsample;
  opt::GaOptions ga = cfg_.ga;
  ga.seed = cfg_.seed;
  // Candidate evaluations fan out across the executor; breeding stays on
  // this thread, so the GA's RNG stream — and therefore the result — is
  // bit-identical for any thread count.
  const Executor executor(cfg_.threads);
  ga.executor = &executor;
  const opt::GaResult result = opt::optimize_projection(
      cfg_.coefficients, d,
      [this](const rp::TernaryMatrix& p) { return fitness(p); }, ga);
  history_ = result.history;
  return train_with_projection(result.best);
}

}  // namespace hbrp::core
