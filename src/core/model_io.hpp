// Binary (de)serialization of trained classifiers.
//
// A trained model is the product of an expensive offline phase (SCG + GA on
// a PC, Fig. 2 top); persisting it decouples training from deployment and
// lets every evaluation harness share one artefact. The format stores the
// dense ternary projection matrix, the downsampling factor, the Gaussian MF
// parameters and alpha_train; everything derived (packed matrix, integer MF
// tables) is rebuilt on load, so a file is valid for both the float and the
// embedded execution paths.
#pragma once

#include <filesystem>

#include "core/trainer.hpp"

namespace hbrp::core {

/// Writes `model` to `path` (parent directories are created).
/// Throws hbrp::Error on I/O failure.
void save_model(const TrainedClassifier& model,
                const std::filesystem::path& path);

/// Reads a model previously written by save_model().
/// Throws hbrp::Error on I/O failure, bad magic or malformed content.
TrainedClassifier load_model(const std::filesystem::path& path);

/// Loads `path` if it exists, otherwise invokes `train` (a callable
/// returning TrainedClassifier), saves and returns its result.
template <typename TrainFn>
TrainedClassifier load_or_train(const std::filesystem::path& path,
                                const TrainFn& train) {
  if (std::filesystem::exists(path)) return load_model(path);
  TrainedClassifier model = train();
  save_model(model, path);
  return model;
}

}  // namespace hbrp::core
