// Binary (de)serialization of trained classifiers.
//
// A trained model is the product of an expensive offline phase (SCG + GA on
// a PC, Fig. 2 top); persisting it decouples training from deployment and
// lets every evaluation harness share one artefact. The format stores the
// dense ternary projection matrix, the downsampling factor, the Gaussian MF
// parameters and alpha_train; everything derived (packed matrix, integer MF
// tables) is rebuilt on load, so a file is valid for both the float and the
// embedded execution paths.
//
// The on-disk format (v2) is hardened against flash/filesystem corruption:
// a version-bearing magic, an explicit payload size and a CRC32 over the
// payload are verified before any length field is trusted, every dimension
// is bounds-checked before allocation, and saves are atomic (temp file +
// rename) so a crash mid-save never leaves a truncated model behind.
#pragma once

#include <filesystem>

#include "core/trainer.hpp"
#include "math/check.hpp"

namespace hbrp::core {

/// Writes `model` to `path` (parent directories are created).
/// Throws hbrp::Error on I/O failure.
void save_model(const TrainedClassifier& model,
                const std::filesystem::path& path);

/// Reads a model previously written by save_model().
/// Throws hbrp::Error on I/O failure, bad magic or malformed content.
TrainedClassifier load_model(const std::filesystem::path& path);

/// Loads `path` if it holds a valid model, otherwise invokes `train` (a
/// callable returning TrainedClassifier), saves and returns its result.
/// A file that fails to load — corrupt, truncated, or written by an older
/// format version — is treated as a cache miss and falls through to
/// retraining rather than propagating the error: the cache must never be
/// able to make a node unbootable. Saves are atomic, so a concurrent or
/// interrupted writer cannot make this read a half-written file.
template <typename TrainFn>
TrainedClassifier load_or_train(const std::filesystem::path& path,
                                const TrainFn& train) {
  if (std::filesystem::exists(path)) {
    try {
      return load_model(path);
    } catch (const Error&) {
      // Corrupt or stale cache: fall through to retraining below.
    }
  }
  TrainedClassifier model = train();
  save_model(model, path);
  return model;
}

}  // namespace hbrp::core
