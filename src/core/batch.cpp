#include "core/batch.hpp"

#include "math/check.hpp"

namespace hbrp::core {

BeatBatch::BeatBatch(std::size_t window_length)
    : window_length_(window_length) {
  HBRP_REQUIRE(window_length >= 1, "BeatBatch: window length must be >= 1");
}

BeatBatch BeatBatch::from_dataset(const ecg::BeatDataset& ds) {
  HBRP_REQUIRE(!ds.beats.empty(), "BeatBatch::from_dataset(): empty dataset");
  BeatBatch batch(ds.window_size());
  batch.reserve(ds.beats.size());
  for (const ecg::BeatWindow& b : ds.beats) batch.append(b.samples, b.label);
  return batch;
}

void BeatBatch::reserve(std::size_t beats) {
  samples_.reserve(beats * window_length_);
  labels_.reserve(beats);
}

void BeatBatch::clear() {
  samples_.clear();
  labels_.clear();
}

void BeatBatch::append(std::span<const dsp::Sample> window,
                       ecg::BeatClass label) {
  HBRP_REQUIRE(window_length_ >= 1,
               "BeatBatch::append(): batch has no window length set");
  HBRP_REQUIRE(window.size() == window_length_,
               "BeatBatch::append(): window size mismatch");
  samples_.insert(samples_.end(), window.begin(), window.end());
  labels_.push_back(label);
}

std::span<const dsp::Sample> BeatBatch::window(std::size_t i) const {
  HBRP_REQUIRE(i < size(), "BeatBatch::window(): index out of range");
  return {samples_.data() + i * window_length_, window_length_};
}

ecg::BeatClass BeatBatch::label(std::size_t i) const {
  HBRP_REQUIRE(i < size(), "BeatBatch::label(): index out of range");
  return labels_[i];
}

}  // namespace hbrp::core
