#include "core/streaming.hpp"

#include <algorithm>

#include "dsp/resample.hpp"
#include "math/check.hpp"

namespace hbrp::core {

StreamingBeatMonitor::StreamingBeatMonitor(
    embedded::EmbeddedClassifier classifier, MonitorConfig cfg)
    : classifier_(std::move(classifier)),
      cfg_(std::move(cfg)),
      conditioner_(cfg_.filter) {
  HBRP_REQUIRE(cfg_.window_before + cfg_.window_after ==
                   classifier_.projector().expected_window(),
               "StreamingBeatMonitor: window geometry does not match the "
               "classifier");
  chunk_samples_ =
      static_cast<std::size_t>(cfg_.chunk_s * cfg_.peak.fs_hz);
  overlap_samples_ =
      static_cast<std::size_t>(cfg_.overlap_s * cfg_.peak.fs_hz);
  const std::size_t min_overlap =
      cfg_.window_before + cfg_.window_after +
      static_cast<std::size_t>(cfg_.peak.refractory_s * cfg_.peak.fs_hz);
  HBRP_REQUIRE(overlap_samples_ >= min_overlap,
               "StreamingBeatMonitor: overlap shorter than one beat window "
               "plus the refractory period");
  HBRP_REQUIRE(chunk_samples_ > 2 * overlap_samples_,
               "StreamingBeatMonitor: chunk must exceed twice the overlap");
}

std::vector<MonitorBeat> StreamingBeatMonitor::push(dsp::Sample x) {
  if (const auto y = conditioner_.push(x)) buffer_.push_back(*y);
  if (buffer_.size() < chunk_samples_) return {};
  return scan(/*final_pass=*/false);
}

std::vector<MonitorBeat> StreamingBeatMonitor::scan(bool final_pass) {
  dsp::PeakDetectorConfig det_cfg = cfg_.peak;
  const std::vector<std::size_t> peaks =
      dsp::detect_r_peaks(buffer_, det_cfg);

  // A beat is finalized once its full window fits safely inside the chunk:
  // keep a guard of window_after plus half an overlap from the right edge
  // (unless this is the final pass, where everything remaining finalizes).
  const std::size_t guard = cfg_.window_after + overlap_samples_ / 2;
  const std::size_t limit =
      final_pass || buffer_.size() < guard ? buffer_.size()
                                           : buffer_.size() - guard;

  std::vector<MonitorBeat> out;
  for (const std::size_t local_peak : peaks) {
    if (local_peak >= limit) continue;
    if (local_peak < cfg_.window_before ||
        local_peak + cfg_.window_after >= buffer_.size())
      continue;
    const std::size_t absolute = buffer_base_ + local_peak;
    if (absolute < emitted_up_to_) continue;  // already reported last chunk
    const dsp::Signal window = dsp::extract_window(
        buffer_, local_peak, cfg_.window_before, cfg_.window_after);
    out.push_back({absolute, classifier_.classify_window(window)});
    emitted_up_to_ = absolute + 1;
  }

  if (!final_pass) {
    // Slide: keep the overlap region (plus window headroom) for the next
    // scan so boundary beats are seen with full context.
    const std::size_t keep = overlap_samples_ + cfg_.window_before;
    if (buffer_.size() > keep) {
      const std::size_t drop = buffer_.size() - keep;
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(drop));
      buffer_base_ += drop;
    }
  }
  return out;
}

std::vector<MonitorBeat> StreamingBeatMonitor::flush() {
  const std::vector<dsp::Sample> tail = conditioner_.flush();
  buffer_.insert(buffer_.end(), tail.begin(), tail.end());
  std::vector<MonitorBeat> out = scan(/*final_pass=*/true);
  buffer_.clear();
  buffer_base_ = 0;
  emitted_up_to_ = 0;
  return out;
}

std::size_t StreamingBeatMonitor::memory_samples() const {
  // Buffer high-water mark is one full chunk; conditioner state on top.
  return chunk_samples_ + conditioner_.memory_samples();
}

std::size_t StreamingBeatMonitor::latency() const {
  return conditioner_.delay() + chunk_samples_;
}

}  // namespace hbrp::core
