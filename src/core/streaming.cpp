#include "core/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/resample.hpp"
#include "ecg/types.hpp"
#include "math/check.hpp"

namespace hbrp::core {

StreamingBeatMonitor::StreamingBeatMonitor(
    embedded::EmbeddedClassifier classifier, MonitorConfig cfg)
    : classifier_(std::move(classifier)),
      cfg_(std::move(cfg)),
      conditioner_(cfg_.filter),
      sqi_(cfg_.quality) {
  HBRP_REQUIRE(cfg_.window_before + cfg_.window_after ==
                   classifier_.projector().expected_window(),
               "StreamingBeatMonitor: window geometry does not match the "
               "classifier");
  chunk_samples_ =
      static_cast<std::size_t>(cfg_.chunk_s * cfg_.peak.fs_hz);
  overlap_samples_ =
      static_cast<std::size_t>(cfg_.overlap_s * cfg_.peak.fs_hz);
  const std::size_t min_overlap =
      cfg_.window_before + cfg_.window_after +
      static_cast<std::size_t>(cfg_.peak.refractory_s * cfg_.peak.fs_hz);
  HBRP_REQUIRE(overlap_samples_ >= min_overlap,
               "StreamingBeatMonitor: overlap shorter than one beat window "
               "plus the refractory period");
  HBRP_REQUIRE(chunk_samples_ > 2 * overlap_samples_,
               "StreamingBeatMonitor: chunk must exceed twice the overlap");
  last_raw_ = static_cast<dsp::Sample>(
      (static_cast<std::int64_t>(cfg_.quality.rail_low) +
       cfg_.quality.rail_high) /
      2);
}

void StreamingBeatMonitor::push_impl(double x, const BeatSink* beats,
                                     const PendingBeatSink* pending) {
  if (!std::isfinite(x)) {
    // Reject the value but keep the timeline, the conditioner and the SQI
    // chunking aligned: sample-hold the last accepted code. A sustained
    // non-finite burst thereby turns into a flat-line the quality
    // estimator degrades on, which is exactly the right escalation.
    ++stats_.rejected_nonfinite;
    push_impl(last_raw_, beats, pending);
    return;
  }
  const auto lo = static_cast<double>(cfg_.quality.rail_low);
  const auto hi = static_cast<double>(cfg_.quality.rail_high);
  if (x < lo || x > hi) {
    ++stats_.clamped;
    x = std::clamp(x, lo, hi);
  }
  push_impl(static_cast<dsp::Sample>(std::lround(x)), beats, pending);
}

void StreamingBeatMonitor::push_impl(dsp::Sample x, const BeatSink* beats,
                                     const PendingBeatSink* pending) {
  ++stats_.samples_in;
  if (x < cfg_.quality.rail_low || x > cfg_.quality.rail_high) {
    ++stats_.clamped;
    x = std::clamp(x, cfg_.quality.rail_low, cfg_.quality.rail_high);
  }
  last_raw_ = x;
  const std::size_t idx = input_index_++;

  if (cfg_.quality_gating) {
    const bool was_bad = quality_state_ == dsp::SignalQuality::Bad;
    if (const auto update = sqi_.push(x)) {
      if (*update != quality_state_) {
        // A real transition: drain the conditioner's pending batch first so
        // every scan that would have preceded this moment on the per-sample
        // path happens before the transition is recorded. Same-state SQI
        // updates (the common case, one per SQI chunk) skip the sync and
        // keep the conditioner batching at full size.
        sync_conditioner(beats, pending);
        on_quality_update(*update, beats, pending);
      }
    }
    if (was_bad || quality_state_ == dsp::SignalQuality::Bad) {
      // Suppressed: consumed while in (or entering / just leaving) the Bad
      // state. Recovery re-arms on the next accepted sample.
      ++stats_.bad_signal_samples;
      return;
    }
    if (needs_rearm_) rearm(idx);
  }

  conditioner_.push(x, cond_out_);
  if (!cond_out_.empty()) append_conditioned(beats, pending);
}

void StreamingBeatMonitor::append_conditioned(const BeatSink* beats,
                                              const PendingBeatSink* pending) {
  // Slice the staged conditioner output into the rolling buffer, scanning
  // exactly when it reaches chunk_samples_ — the per-sample path appended
  // one sample at a time and scanned at the same crossings, so the verdict
  // stream is independent of the conditioner's batch boundaries.
  std::size_t i = 0;
  while (i < cond_out_.size()) {
    HBRP_ASSERT(buffer_.size() < chunk_samples_);
    const std::size_t take =
        std::min(chunk_samples_ - buffer_.size(), cond_out_.size() - i);
    buffer_.insert(buffer_.end(),
                   cond_out_.begin() + static_cast<std::ptrdiff_t>(i),
                   cond_out_.begin() + static_cast<std::ptrdiff_t>(i + take));
    i += take;
    if (buffer_.size() >= chunk_samples_)
      scan(/*final_pass=*/false, beats, pending);
  }
  cond_out_.clear();
}

void StreamingBeatMonitor::sync_conditioner(const BeatSink* beats,
                                            const PendingBeatSink* pending) {
  conditioner_.sync(cond_out_);
  if (!cond_out_.empty()) append_conditioned(beats, pending);
}

void StreamingBeatMonitor::push(dsp::Sample x, const BeatSink& sink) {
  push_impl(x, &sink, nullptr);
}

void StreamingBeatMonitor::push(double x, const BeatSink& sink) {
  push_impl(x, &sink, nullptr);
}

void StreamingBeatMonitor::push(dsp::Sample x, const PendingBeatSink& sink) {
  push_impl(x, nullptr, &sink);
}

void StreamingBeatMonitor::push(double x, const PendingBeatSink& sink) {
  push_impl(x, nullptr, &sink);
}

void StreamingBeatMonitor::push_block(std::span<const dsp::Sample> xs,
                                      const BeatSink& sink) {
  for (const dsp::Sample x : xs) push_impl(x, &sink, nullptr);
}

void StreamingBeatMonitor::push_block(std::span<const double> xs,
                                      const BeatSink& sink) {
  for (const double x : xs) push_impl(x, &sink, nullptr);
}

void StreamingBeatMonitor::push_block(std::span<const dsp::Sample> xs,
                                      const PendingBeatSink& sink) {
  for (const dsp::Sample x : xs) push_impl(x, nullptr, &sink);
}

void StreamingBeatMonitor::push_block(std::span<const double> xs,
                                      const PendingBeatSink& sink) {
  for (const double x : xs) push_impl(x, nullptr, &sink);
}

std::vector<MonitorBeat> StreamingBeatMonitor::push(dsp::Sample x) {
  std::vector<MonitorBeat> out;
  push(x, [&out](const MonitorBeat& b) { out.push_back(b); });
  return out;
}

std::vector<MonitorBeat> StreamingBeatMonitor::push(double x) {
  std::vector<MonitorBeat> out;
  push(x, [&out](const MonitorBeat& b) { out.push_back(b); });
  return out;
}

void StreamingBeatMonitor::rearm(std::size_t at_absolute) {
  // The conditioner was rebuilt when the signal went Bad; its first output
  // after warm-up corresponds to this sample, so the rolling buffer
  // restarts here. The peak detector's adaptive threshold re-seeds from
  // the fresh buffer on the next scan — no pre-fault statistics survive.
  buffer_base_ = at_absolute;
  emitted_up_to_ = std::max(emitted_up_to_, at_absolute);
  needs_rearm_ = false;
}

void StreamingBeatMonitor::on_quality_update(dsp::SignalQuality next,
                                             const BeatSink* beats,
                                             const PendingBeatSink* pending) {
  if (next == quality_state_) return;
  const std::size_t qchunk = sqi_.chunk_samples();
  const bool demotion = next > quality_state_;
  // A demotion describes samples already consumed: it retro-covers the
  // chunk that tripped it. A promotion only applies from here on.
  const std::size_t effective =
      demotion ? (input_index_ > qchunk ? input_index_ - qchunk : 0)
               : input_index_;

  const bool entering_bad = next == dsp::SignalQuality::Bad;
  const bool leaving_bad = quality_state_ == dsp::SignalQuality::Bad;
  quality_state_ = next;
  transitions_.emplace_back(effective, next);

  if (entering_bad) {
    ++stats_.degradations;
    // Drop the buffer tail from two SQI chunks before the detection point:
    // the fault typically began mid-way through the previous chunk, and
    // the transition edge itself must not fabricate beats. Everything
    // older is salvaged with a final-style scan before the buffer dies.
    const std::size_t margin = 2 * qchunk;
    const std::size_t cut =
        input_index_ > margin ? input_index_ - margin : 0;
    if (buffer_base_ + buffer_.size() > cut)
      buffer_.resize(cut > buffer_base_ ? cut - buffer_base_ : 0);
    if (!buffer_.empty()) scan(/*final_pass=*/true, beats, pending);
    buffer_.clear();
    conditioner_.reset();
    needs_rearm_ = true;
  }
  if (leaving_bad) ++stats_.recoveries;
}

dsp::SignalQuality StreamingBeatMonitor::quality_at(
    std::size_t absolute) const {
  dsp::SignalQuality q = baseline_quality_;
  for (const auto& [index, state] : transitions_) {
    if (index > absolute) break;
    q = state;
  }
  return q;
}

void StreamingBeatMonitor::scan(bool final_pass, const BeatSink* beats,
                                const PendingBeatSink* pending) {
  // Wavelet (bit-identical to dsp::detect_r_peaks, the pre-block-kernel
  // detector) or the adaptive fast path, per cfg_.peak.kind; either way the
  // member scratch keeps the steady-state scan allocation-free.
  kernels::detect_r_peaks_kind(buffer_, cfg_.peak, peak_scratch_, peaks_);
  const std::vector<std::size_t>& peaks = peaks_;

  // A beat is finalized once its full window fits safely inside the chunk:
  // keep a guard of window_after plus half an overlap from the right edge
  // (unless this is the final pass, where everything remaining finalizes).
  const std::size_t guard = cfg_.window_after + overlap_samples_ / 2;
  const std::size_t limit =
      final_pass || buffer_.size() < guard ? buffer_.size()
                                           : buffer_.size() - guard;

  for (const std::size_t local_peak : peaks) {
    if (local_peak >= limit) continue;
    if (local_peak < cfg_.window_before ||
        local_peak + cfg_.window_after >= buffer_.size())
      continue;
    const std::size_t absolute = buffer_base_ + local_peak;
    if (absolute < emitted_up_to_) continue;  // already reported last chunk

    MonitorBeat beat;
    beat.r_peak = absolute;
    beat.quality = cfg_.quality_gating ? quality_at(absolute)
                                       : dsp::SignalQuality::Good;
    if (beat.quality == dsp::SignalQuality::Bad) {
      // Defensive: suppressed regions should never reach here, but a beat
      // straddling a degradation boundary is dropped, not reported.
      emitted_up_to_ = absolute + 1;
      continue;
    }
    if (beat.quality == dsp::SignalQuality::Suspect) {
      // Safe default under doubtful signal: report Unknown, which counts
      // as pathological and escalates to full delineation downstream.
      beat.predicted = ecg::BeatClass::Unknown;
      ++stats_.suspect_beats;
      if (beats != nullptr)
        (*beats)(beat);
      else
        (*pending)({beat, {}, /*needs_classification=*/false});
    } else if (beats != nullptr) {
      // The guards above guarantee the full window is inside the buffer, so
      // classify straight off a span view through the member scratch: no
      // window copy and no coefficient allocation per beat.
      const std::span<const dsp::Sample> window{
          buffer_.data() + (local_peak - cfg_.window_before),
          cfg_.window_before + cfg_.window_after};
      beat.predicted = classifier_.classify_window(window, classify_scratch_);
      if (drift_ != nullptr) {
        // classify_window left exactly k coefficients in the scratch.
        drift_->observe(
            std::span<const std::int32_t>(classify_scratch_.u.data(),
                                          classify_scratch_.u.size()),
            !ecg::is_pathological(beat.predicted));
      }
      (*beats)(beat);
    } else {
      // Deferred path: the scan guards above guarantee the full window is
      // inside the buffer, so the span view is sample-exact with
      // extract_window's copy on the classifying path.
      const std::span<const dsp::Sample> window{
          buffer_.data() + (local_peak - cfg_.window_before),
          cfg_.window_before + cfg_.window_after};
      (*pending)({beat, window, /*needs_classification=*/true});
    }
    emitted_up_to_ = absolute + 1;
  }

  // Transitions entirely behind the reporting frontier can never be looked
  // up again; fold them into the baseline.
  while (transitions_.size() >= 2 && transitions_[1].first <= emitted_up_to_) {
    baseline_quality_ = transitions_.front().second;
    transitions_.pop_front();
  }

  if (!final_pass) {
    // Slide: keep the overlap region (plus window headroom) for the next
    // scan so boundary beats are seen with full context.
    const std::size_t keep = overlap_samples_ + cfg_.window_before;
    if (buffer_.size() > keep) {
      const std::size_t drop = buffer_.size() - keep;
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(drop));
      buffer_base_ += drop;
    }
  }
}

void StreamingBeatMonitor::flush(const BeatSink& sink) {
  flush_impl(&sink, nullptr);
}

void StreamingBeatMonitor::flush(const PendingBeatSink& sink) {
  flush_impl(nullptr, &sink);
}

void StreamingBeatMonitor::flush_impl(const BeatSink* beats,
                                      const PendingBeatSink* pending) {
  // Two-step drain mirrors the per-sample path exactly: first the pending
  // batch (whose outputs would have streamed out one by one, scanning at
  // chunk crossings), then the right-border tail, appended wholesale before
  // one final scan — the same shape StreamingConditioner::flush() had.
  sync_conditioner(beats, pending);
  conditioner_.flush_tail(cond_out_);
  buffer_.insert(buffer_.end(), cond_out_.begin(), cond_out_.end());
  cond_out_.clear();
  scan(/*final_pass=*/true, beats, pending);
  buffer_.clear();
  buffer_base_ = 0;
  emitted_up_to_ = 0;
  input_index_ = 0;
  conditioner_.reset();
  sqi_.reset();
  quality_state_ = dsp::SignalQuality::Good;
  baseline_quality_ = dsp::SignalQuality::Good;
  transitions_.clear();
  needs_rearm_ = false;
}

std::vector<MonitorBeat> StreamingBeatMonitor::flush() {
  std::vector<MonitorBeat> out;
  flush([&out](const MonitorBeat& b) { out.push_back(b); });
  return out;
}

std::size_t StreamingBeatMonitor::memory_samples() const {
  // Buffer high-water mark is one full chunk; conditioner state on top.
  // The SQI estimator is O(1) (a handful of accumulators) and the
  // transition history is bounded by the handful of state changes a chunk
  // can witness, so neither moves the figure.
  return chunk_samples_ + conditioner_.memory_samples();
}

std::size_t StreamingBeatMonitor::latency() const {
  return conditioner_.delay() + conditioner_.batch_slack() + chunk_samples_;
}

}  // namespace hbrp::core
