#include "scenario/episodes.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "math/check.hpp"
#include "testing/fault_inject.hpp"

namespace hbrp::scenario {

namespace {

constexpr double kStartMargin = 0.6;  // room for the first P wave
constexpr double kEndMargin = 0.7;    // last T wave inside the record

/// One planned beat before rendering: placement for the renderer plus the
/// ground-truth classes the annotation will carry.
struct PlannedTruth {
  core::AamiClass aami = core::AamiClass::N;
  bool paced_spike = false;  ///< render a pacemaker spike before the QRS
};

const Episode* active_episode(const ScenarioSpec& spec, double t,
                              EpisodeKind kind) {
  for (const Episode& e : spec.episodes)
    if (e.kind == kind && t >= e.start_s && t < e.start_s + e.duration_s)
      return &e;
  return nullptr;
}

bool rhythm_episode_at(const ScenarioSpec& spec, double t,
                       const Episode** out) {
  for (const EpisodeKind k : {EpisodeKind::AfibIrregularRr,
                              EpisodeKind::SustainedVt,
                              EpisodeKind::PacedRhythm,
                              EpisodeKind::SupraventricularRun,
                              EpisodeKind::MorphologyShift}) {
    const Episode* e = active_episode(spec, t, k);
    if (e != nullptr) {
      *out = e;
      return true;
    }
  }
  return false;
}

/// Linear-interpolation resample of sig[a, b) by `factor` (output length /
/// input length), splicing the result back between the untouched prefix
/// and suffix. Truth beat positions move with their samples. Models a
/// sensor clock running fast/slow (small factor) or a sample-rate
/// misconfiguration (large factor) — in both cases the receiver still
/// believes the nominal rate.
void warp_segment(dsp::Signal& sig, std::vector<TruthBeat>& truth,
                  std::size_t a, std::size_t b, double factor) {
  HBRP_REQUIRE(a < b && b <= sig.size(), "warp_segment: bad range");
  HBRP_REQUIRE(factor > 0.1 && factor < 10.0, "warp_segment: bad factor");
  const std::size_t in_len = b - a;
  const auto out_len = static_cast<std::size_t>(
      std::lround(static_cast<double>(in_len) * factor));
  HBRP_REQUIRE(out_len >= 2, "warp_segment: degenerate output");

  dsp::Signal warped(out_len);
  for (std::size_t j = 0; j < out_len; ++j) {
    const double src =
        static_cast<double>(j) * static_cast<double>(in_len - 1) /
        static_cast<double>(out_len - 1);
    const auto lo = static_cast<std::size_t>(src);
    const std::size_t hi = std::min(lo + 1, in_len - 1);
    const double frac = src - static_cast<double>(lo);
    const double v = (1.0 - frac) * static_cast<double>(sig[a + lo]) +
                     frac * static_cast<double>(sig[a + hi]);
    warped[j] = static_cast<dsp::Sample>(std::lround(v));
  }

  dsp::Signal out;
  out.reserve(sig.size() - in_len + out_len);
  out.insert(out.end(), sig.begin(),
             sig.begin() + static_cast<std::ptrdiff_t>(a));
  out.insert(out.end(), warped.begin(), warped.end());
  out.insert(out.end(), sig.begin() + static_cast<std::ptrdiff_t>(b),
             sig.end());
  sig = std::move(out);

  const auto shift =
      static_cast<std::ptrdiff_t>(out_len) - static_cast<std::ptrdiff_t>(in_len);
  for (TruthBeat& tb : truth) {
    if (tb.sample >= b) {
      tb.sample = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(tb.sample) + shift);
    } else if (tb.sample >= a) {
      tb.sample = a + static_cast<std::size_t>(std::lround(
                          static_cast<double>(tb.sample - a) * factor));
    }
  }
}

/// Union coverage of the fault events, clipped to [0, n).
std::size_t covered_samples(const std::vector<testing::FaultEvent>& events,
                            std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  spans.reserve(events.size());
  for (const testing::FaultEvent& e : events)
    spans.emplace_back(std::min(e.start, n),
                       std::min(e.start + e.duration, n));
  std::sort(spans.begin(), spans.end());
  std::size_t covered = 0, cursor = 0;
  for (const auto& [lo, hi] : spans) {
    const std::size_t from = std::max(lo, cursor);
    if (hi > from) covered += hi - from;
    cursor = std::max(cursor, hi);
  }
  return covered;
}

}  // namespace

const char* to_string(EpisodeKind kind) {
  switch (kind) {
    case EpisodeKind::AfibIrregularRr: return "afib-irregular-rr";
    case EpisodeKind::SustainedVt: return "sustained-vt";
    case EpisodeKind::PacedRhythm: return "paced-rhythm";
    case EpisodeKind::ArtefactStorm: return "artefact-storm";
    case EpisodeKind::ElectrodeDrop: return "electrode-drop";
    case EpisodeKind::ClockSkew: return "clock-skew";
    case EpisodeKind::RateMismatch: return "rate-mismatch";
    case EpisodeKind::SupraventricularRun: return "supraventricular-run";
    case EpisodeKind::MorphologyShift: return "morphology-shift";
  }
  return "?";
}

RrStats rr_statistics(const std::vector<std::size_t>& r_peaks, int fs_hz) {
  RrStats rr;
  if (r_peaks.size() < 2 || fs_hz <= 0) return rr;
  std::vector<double> rr_ms;
  rr_ms.reserve(r_peaks.size() - 1);
  for (std::size_t i = 1; i < r_peaks.size(); ++i)
    rr_ms.push_back(1000.0 *
                    static_cast<double>(r_peaks[i] - r_peaks[i - 1]) /
                    fs_hz);
  double sum = 0.0;
  for (const double v : rr_ms) sum += v;
  rr.mean_ms = sum / static_cast<double>(rr_ms.size());
  double var = 0.0;
  for (const double v : rr_ms) var += (v - rr.mean_ms) * (v - rr.mean_ms);
  rr.sdnn_ms = std::sqrt(var / static_cast<double>(rr_ms.size()));
  if (rr_ms.size() >= 2) {
    double sq = 0.0;
    std::size_t over50 = 0;
    for (std::size_t i = 1; i < rr_ms.size(); ++i) {
      const double d = rr_ms[i] - rr_ms[i - 1];
      sq += d * d;
      if (std::abs(d) > 50.0) ++over50;
    }
    rr.rmssd_ms = std::sqrt(sq / static_cast<double>(rr_ms.size() - 1));
    rr.pnn50 =
        static_cast<double>(over50) / static_cast<double>(rr_ms.size() - 1);
  }
  return rr;
}

ScenarioStream build_scenario(const ScenarioSpec& spec) {
  HBRP_REQUIRE(spec.duration_s >= 5.0,
               "build_scenario: duration must be >= 5 s");
  HBRP_REQUIRE(spec.fs_hz > 0, "build_scenario: fs must be positive");
  HBRP_REQUIRE(spec.heart_rate_bpm > 20.0 && spec.heart_rate_bpm < 250.0,
               "build_scenario: implausible heart rate");

  // The planning stream is decorrelated from the renderer's morphology
  // stream (render_planned reseeds from spec.seed itself).
  math::Rng plan_rng(spec.seed ^ 0x5CE7A110F00DULL);
  math::Rng fault_rng = plan_rng.split();

  const double rr_base = 60.0 / spec.heart_rate_bpm;
  const double resp_freq = plan_rng.uniform(0.15, 0.35);
  const double resp_depth = plan_rng.uniform(0.01, 0.04);
  const double resp_phase = plan_rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double pvc_rate =
      spec.background == ecg::RecordProfile::PvcOccasional ? 0.07 : 0.008;

  std::vector<ecg::PlacedBeat> placed;
  std::vector<PlannedTruth> planned;  // parallel to *annotated* placed beats
  double t = kStartMargin;
  bool prev_was_pvc = false;
  const Episode* last_vt = nullptr;  // fusion beat only at VT onset

  while (t < spec.duration_s - kEndMargin) {
    const Episode* rhythm = nullptr;
    double rr = rr_base;
    if (rhythm_episode_at(spec, t, &rhythm)) {
      switch (rhythm->kind) {
        case EpisodeKind::AfibIrregularRr: {
          // The Snippet-1 discriminator in reverse: no respiratory
          // modulation, a wide uniform RR spread, all conducted beats.
          placed.push_back({t, ecg::BeatClass::N, 1.0, true});
          planned.push_back({core::AamiClass::N, false});
          rr = rr_base * plan_rng.uniform(0.55, 1.50);
          prev_was_pvc = false;
          break;
        }
        case EpisodeKind::SustainedVt: {
          if (last_vt != rhythm) {
            // VT onset: one fusion beat — a normal and a ventricular
            // wavefront colliding, rendered as two overlapped beats with
            // one annotation (AAMI F).
            last_vt = rhythm;
            placed.push_back({t, ecg::BeatClass::N, 0.55, false});
            placed.push_back({t, ecg::BeatClass::V, 0.80, true});
            planned.push_back({core::AamiClass::F, false});
          } else {
            placed.push_back({t, ecg::BeatClass::V, 1.0, true});
            planned.push_back({core::AamiClass::V, false});
          }
          rr = plan_rng.uniform(0.33, 0.40);  // ~160-180 bpm
          prev_was_pvc = true;
          break;
        }
        case EpisodeKind::SupraventricularRun: {
          // Atrial ectopy: normal (narrow) QRS morphology landing far too
          // early, slightly smaller from incomplete ventricular filling.
          // AAMI S — premature + supraventricular origin. To a pipeline
          // classifying on morphology alone these look exactly like N (the
          // paper's three-class model has no S concept), which is what the
          // robustness scorer should surface rather than divide by zero.
          placed.push_back({t, ecg::BeatClass::N, 0.92, true});
          planned.push_back({core::AamiClass::S, false});
          rr = rr_base * plan_rng.uniform(0.45, 0.62);
          prev_was_pvc = false;
          break;
        }
        case EpisodeKind::MorphologyShift: {
          // A novel ectopic morphology absent from every training split: a
          // conducted beat fused with a delayed bundle-branch-shaped
          // wavefront — neither the N, V nor L template alone, so its RP
          // projection lands away from all training centroids. The blend
          // amplitude scales with episode magnitude (bench_drift sweeps it
          // for the detection-latency curve). Ventricular-origin ectopy:
          // AAMI V, moderately premature RR.
          const double blend =
              std::clamp(0.45 + 0.45 * rhythm->magnitude, 0.0, 1.0);
          placed.push_back({t, ecg::BeatClass::N, 0.9, true});
          placed.push_back({t + 0.06, ecg::BeatClass::L, blend, false});
          planned.push_back({core::AamiClass::V, false});
          rr = rr_base * plan_rng.uniform(0.50, 0.62);
          prev_was_pvc = true;
          break;
        }
        case EpisodeKind::PacedRhythm: {
          // Ventricular pacing: a narrow stimulus spike then a wide QRS.
          // AAMI Q — a model trained on N/V/L has no business being
          // confident here; escalation is the right answer.
          placed.push_back({t, ecg::BeatClass::V, 0.9, true});
          planned.push_back({core::AamiClass::Q, true});
          rr = (60.0 / 72.0) * (1.0 + 0.01 * plan_rng.normal());
          prev_was_pvc = false;
          break;
        }
        default: break;
      }
    } else {
      // Background rhythm: the generate_record() model, lightly simplified.
      const bool pvc = !prev_was_pvc && plan_rng.bernoulli(pvc_rate);
      const double resp =
          1.0 + resp_depth * std::sin(2.0 * std::numbers::pi * resp_freq * t +
                                      resp_phase);
      const double jitter =
          std::clamp(1.0 + 0.025 * plan_rng.normal(), 0.8, 1.2);
      rr = rr_base * resp * jitter;
      if (pvc) {
        const double prematurity = plan_rng.uniform(0.25, 0.40);
        double center = t - prematurity * rr_base;
        if (!placed.empty() && center - placed.back().center_s < 0.3)
          center = placed.back().center_s + 0.3;
        placed.push_back({center, ecg::BeatClass::V, 1.0, true});
        planned.push_back({core::AamiClass::V, false});
        rr += prematurity * rr_base;  // compensatory pause
      } else {
        placed.push_back({t, ecg::BeatClass::N, 1.0, true});
        planned.push_back({core::AamiClass::N, false});
      }
      prev_was_pvc = pvc;
    }
    t += std::max(rr, 0.25);
  }

  // PVC prematurity can nudge a beat before its predecessor; the renderer
  // requires sorted input. Stable-sort keeps equal-center fusion pairs in
  // render order.
  std::stable_sort(placed.begin(), placed.end(),
                   [](const ecg::PlacedBeat& a, const ecg::PlacedBeat& b) {
                     return a.center_s < b.center_s;
                   });

  ecg::SynthConfig synth;
  synth.fs_hz = spec.fs_hz;
  synth.duration_s = spec.duration_s;
  synth.num_leads = 1;
  synth.noise_scale = spec.noise_scale;
  synth.seed = spec.seed;
  ecg::Record rec = ecg::render_planned(synth, placed);
  HBRP_REQUIRE(rec.beats.size() == planned.size(),
               "build_scenario: annotation/plan mismatch");

  ScenarioStream out;
  out.fs_hz = spec.fs_hz;
  out.truth.reserve(rec.beats.size());
  for (std::size_t i = 0; i < rec.beats.size(); ++i) {
    TruthBeat tb;
    tb.sample = rec.beats[i].sample;
    tb.cls = rec.beats[i].cls;
    tb.aami = planned[i].aami;
    out.truth.push_back(tb);
  }

  dsp::Signal lead = std::move(rec.leads.front());

  // Pacemaker stimulus artefacts: a 2-sample near-rail spike ~45 ms before
  // each paced QRS (what a surface ECG shows of the pacing pulse).
  const auto spike_lead = static_cast<std::size_t>(
      std::lround(0.045 * spec.fs_hz));
  for (std::size_t i = 0; i < out.truth.size(); ++i) {
    if (!planned[i].paced_spike) continue;
    const std::size_t r = out.truth[i].sample;
    if (r < spike_lead) continue;
    const std::size_t at = r - spike_lead;
    for (std::size_t k = 0; k < 2 && at + k < lead.size(); ++k)
      lead[at + k] = std::min<dsp::Sample>(lead[at + k] + 700, 2047);
  }

  // Timeline warps (clock skew / sample-rate mismatch), latest-first so
  // earlier episode boundaries stay valid while splicing.
  std::vector<const Episode*> warps;
  for (const Episode& e : spec.episodes)
    if (e.kind == EpisodeKind::ClockSkew || e.kind == EpisodeKind::RateMismatch)
      warps.push_back(&e);
  std::sort(warps.begin(), warps.end(),
            [](const Episode* a, const Episode* b) {
              return a->start_s > b->start_s;
            });
  for (const Episode* e : warps) {
    const auto a = std::min(
        lead.size(), static_cast<std::size_t>(
                         std::lround(e->start_s * spec.fs_hz)));
    const auto b = std::min(
        lead.size(),
        static_cast<std::size_t>(
            std::lround((e->start_s + e->duration_s) * spec.fs_hz)));
    if (b <= a + 8) continue;
    const double factor = e->kind == EpisodeKind::ClockSkew
                              ? 1.0 + e->magnitude
                              : e->magnitude;
    warp_segment(lead, out.truth, a, b, factor);
  }

  // Acquisition faults on the (possibly warped) stream timeline.
  testing::FaultInjectorConfig faults;
  faults.seed = fault_rng.next();
  for (const Episode& e : spec.episodes) {
    const auto a = static_cast<std::size_t>(
        std::lround(e.start_s * spec.fs_hz));
    const auto span = static_cast<std::size_t>(
        std::lround(e.duration_s * spec.fs_hz));
    if (span == 0 || a >= lead.size()) continue;
    switch (e.kind) {
      case EpisodeKind::ArtefactStorm: {
        // Sustained EMG/motion noise with impulse bursts riding on top —
        // the artefact-gate regime of SNIPPETS.md Snippet 2.
        testing::FaultEvent g;
        g.kind = testing::FaultKind::GaussianNoise;
        g.start = a;
        g.duration = span;
        g.magnitude = 120.0 * e.magnitude;
        faults.events.push_back(g);
        testing::append_burst_train(
            faults.events, fault_rng, testing::FaultKind::ImpulseNoise, a,
            span, /*count=*/6, spec.fs_hz / 4u,
            static_cast<std::size_t>(spec.fs_hz), 800.0 * e.magnitude,
            /*rate=*/0.25);
        break;
      }
      case EpisodeKind::ElectrodeDrop: {
        // Lead-off flat-lines with brief recoveries, plus one burst of
        // driver garbage (NaN/Inf) — the nastiest real-world combination.
        testing::append_burst_train(
            faults.events, fault_rng, testing::FaultKind::LeadOff, a, span,
            /*count=*/4, static_cast<std::size_t>(spec.fs_hz / 2),
            static_cast<std::size_t>(2 * spec.fs_hz), /*magnitude=*/10.0);
        testing::append_burst_train(
            faults.events, fault_rng, testing::FaultKind::NonFinite, a, span,
            /*count=*/1, spec.fs_hz / 4u,
            static_cast<std::size_t>(spec.fs_hz / 2), 0.0, /*rate=*/0.6);
        break;
      }
      default: break;
    }
  }

  // Truth beats inside a flat-line burst are physically undetectable;
  // flag them so the scorer can separate "lost to lead-off" from "missed".
  for (TruthBeat& tb : out.truth)
    for (const testing::FaultEvent& e : faults.events)
      if (e.kind == testing::FaultKind::LeadOff && tb.sample >= e.start &&
          tb.sample < e.start + e.duration)
        tb.obscured = true;

  out.artefact_samples = covered_samples(faults.events, lead.size());
  out.samples = testing::FaultInjector::apply(lead, faults);
  HBRP_REQUIRE(out.samples.size() == lead.size(),
               "build_scenario: fault kinds must preserve the timeline");

  std::vector<std::size_t> peaks;
  peaks.reserve(out.truth.size());
  for (const TruthBeat& tb : out.truth) peaks.push_back(tb.sample);
  out.rr = rr_statistics(peaks, spec.fs_hz);
  return out;
}

std::vector<ScenarioSpec> standard_scenarios(double duration_s,
                                             std::uint64_t seed_base) {
  HBRP_REQUIRE(duration_s >= 30.0,
               "standard_scenarios: need >= 30 s per scenario");
  std::vector<ScenarioSpec> specs;
  const double mid = duration_s * 0.4;

  ScenarioSpec clean;
  clean.name = "clean_ward";
  clean.background = ecg::RecordProfile::PvcOccasional;
  specs.push_back(clean);

  ScenarioSpec afib;
  afib.name = "afib_irregular_rr";
  afib.episodes.push_back(
      {EpisodeKind::AfibIrregularRr, 5.0, duration_s - 10.0, 1.0});
  specs.push_back(afib);

  ScenarioSpec vt;
  vt.name = "sustained_vt";
  vt.background = ecg::RecordProfile::PvcOccasional;
  vt.episodes.push_back({EpisodeKind::SustainedVt, mid, 12.0, 1.0});
  specs.push_back(vt);

  ScenarioSpec paced;
  paced.name = "paced_rhythm";
  paced.episodes.push_back(
      {EpisodeKind::PacedRhythm, 5.0, duration_s - 10.0, 1.0});
  specs.push_back(paced);

  ScenarioSpec storm;
  storm.name = "artefact_storm";
  storm.background = ecg::RecordProfile::PvcOccasional;
  storm.episodes.push_back({EpisodeKind::ArtefactStorm, 10.0, 10.0, 1.0});
  storm.episodes.push_back(
      {EpisodeKind::ArtefactStorm, mid + 5.0, 10.0, 1.5});
  specs.push_back(storm);

  ScenarioSpec drop;
  drop.name = "electrode_drop";
  drop.background = ecg::RecordProfile::PvcOccasional;
  drop.episodes.push_back({EpisodeKind::ElectrodeDrop, mid, 15.0, 1.0});
  specs.push_back(drop);

  ScenarioSpec skew;
  skew.name = "clock_skew";
  skew.background = ecg::RecordProfile::PvcOccasional;
  skew.episodes.push_back({EpisodeKind::ClockSkew, 0.0, duration_s, 0.03});
  specs.push_back(skew);

  ScenarioSpec mismatch;
  mismatch.name = "rate_mismatch";
  mismatch.background = ecg::RecordProfile::PvcOccasional;
  mismatch.episodes.push_back(
      {EpisodeKind::RateMismatch, mid, duration_s * 0.25, 300.0 / 360.0});
  specs.push_back(mismatch);

  // Appended after the original eight so existing per-index seeds
  // (seed_base + i) and any "first N scenarios" bench subsets are stable.
  ScenarioSpec svrun;
  svrun.name = "supraventricular_run";
  svrun.episodes.push_back(
      {EpisodeKind::SupraventricularRun, mid, 15.0, 1.0});
  specs.push_back(svrun);

  // The drift tracker's target workload (src/drift): a sustained run of a
  // composite shape no training split contains. Appended tenth, same
  // index-stability contract as above.
  ScenarioSpec shift;
  shift.name = "morphology_shift";
  shift.episodes.push_back(
      {EpisodeKind::MorphologyShift, mid, duration_s * 0.5, 1.0});
  specs.push_back(shift);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].duration_s = duration_s;
    specs[i].seed = seed_base + i;
  }
  return specs;
}

}  // namespace hbrp::scenario
