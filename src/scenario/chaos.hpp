// scenario::ChaosProxy — a seeded fault-injecting TCP relay for the wire
// path.
//
// Sits between a SensorNodeClient and the GatewayServer on loopback:
// the client connects to the proxy's port, the proxy opens its own
// connection to the real gateway, and every byte crosses a deterministic
// gauntlet:
//
//   bit flips        each relayed byte is corrupted (one random bit XOR)
//                    with probability bit_flip_rate — exercises the CRC +
//                    sticky-Corrupt teardown on both frame parsers;
//   connection kills with probability kill_probability per connection, a
//                    byte budget is drawn at accept time and both sockets
//                    are destroyed the instant the relayed total crosses
//                    it — mid-frame, mid-handshake, wherever it lands;
//   fragmentation    max_burst caps every relay write, forcing the worst
//                    TCP segmentation the parsers must already handle;
//   latency jitter   a staged block may be held for a few milliseconds
//                    before release. Blocks release strictly FIFO per
//                    direction, so this is pure delay — never reorder —
//                    and the relayed byte *content* is unchanged.
//
// Determinism: every decision is drawn from an Rng seeded by
// (cfg.seed, connection ordinal). A single client driving the link
// produces a deterministic connection order, so the same seed yields the
// same kill points and the same flipped bits, run after run — which is
// what lets tests assert exact end-to-end outcomes *through* the chaos.
//
// Threading: single-threaded like GatewayServer — one caller drives
// poll_once()/serve(); stop() and the stats are safe from other threads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/socket.hpp"

namespace hbrp::scenario {

struct ChaosConfig {
  /// Proxy listen port on 127.0.0.1 (0 = ephemeral; read back via port()).
  std::uint16_t listen_port = 0;
  /// The real gateway's port; one upstream connection per accepted client.
  std::uint16_t upstream_port = 0;
  std::uint64_t seed = 1;

  /// Per-connection probability that a kill byte-budget is armed.
  double kill_probability = 0.0;
  std::size_t kill_after_min_bytes = 1024;
  std::size_t kill_after_max_bytes = 64 * 1024;

  /// Per-relayed-byte probability of XOR-ing one random bit.
  double bit_flip_rate = 0.0;

  /// Cap on bytes per relay write (0 = unlimited): forced fragmentation.
  std::size_t max_burst = 0;

  /// Per staged block: hold for uniform_int(0, jitter_max_ms) milliseconds
  /// with probability jitter_probability. FIFO release — delay, not
  /// reorder.
  double jitter_probability = 0.0;
  int jitter_max_ms = 0;
};

/// Single-writer (the poll thread) relaxed-atomic counters.
struct ChaosStats {
  std::atomic<std::uint64_t> conns_relayed{0};
  std::atomic<std::uint64_t> conns_killed{0};
  std::atomic<std::uint64_t> bytes_relayed{0};
  std::atomic<std::uint64_t> bits_flipped{0};
  std::atomic<std::uint64_t> blocks_delayed{0};
};

class ChaosProxy {
 public:
  /// Binds the listener immediately; throws hbrp::Error if the port is
  /// unavailable.
  explicit ChaosProxy(ChaosConfig cfg);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// One relay round: accept, read + corrupt + stage, release due blocks.
  /// `timeout_ms` bounds the poll(2) wait (shortened to the next jitter
  /// release). Returns bytes moved, so a driver can tell progress.
  std::size_t poll_once(int timeout_ms);

  /// poll_once(5) until stop() is called (from any thread).
  void serve();
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  const ChaosStats& stats() const { return stats_; }

 private:
  struct Relay;

  void accept_pending();
  std::size_t pump_relay(Relay& r);
  void kill_relay(Relay& r);

  ChaosConfig cfg_;
  net::TcpListener listener_;
  std::vector<std::unique_ptr<Relay>> relays_;
  std::uint64_t next_ordinal_ = 0;
  ChaosStats stats_;
  std::atomic<bool> stop_{false};
};

}  // namespace hbrp::scenario
