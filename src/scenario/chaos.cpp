#include "scenario/chaos.hpp"

#include <poll.h>

#include <algorithm>
#include <optional>

#include "math/check.hpp"
#include "math/rng.hpp"

namespace hbrp::scenario {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 16 * 1024;

}  // namespace

/// One client<->gateway pair. `down` is the accepted client socket, `up`
/// the proxy's own connection to the gateway. Each direction stages read
/// bytes (already corrupted) in FIFO blocks with a release time.
struct ChaosProxy::Relay {
  struct Block {
    std::vector<unsigned char> bytes;
    std::size_t head = 0;
    Clock::time_point release;
  };
  struct Direction {
    std::deque<Block> q;
    bool peer_eof = false;  ///< source side hit EOF; flush then close
  };

  net::Socket down;
  net::Socket up;
  bool up_connecting = true;
  bool alive = true;
  math::Rng rng{1};
  std::optional<std::uint64_t> kill_after;  ///< byte budget, if armed
  std::uint64_t relayed = 0;
  Direction to_up;    ///< client -> gateway
  Direction to_down;  ///< gateway -> client
};

ChaosProxy::ChaosProxy(ChaosConfig cfg)
    : cfg_(cfg), listener_(cfg.listen_port) {
  HBRP_REQUIRE(cfg_.upstream_port != 0, "ChaosProxy: upstream port required");
  HBRP_REQUIRE(cfg_.kill_probability >= 0.0 && cfg_.kill_probability <= 1.0 &&
                   cfg_.bit_flip_rate >= 0.0 && cfg_.bit_flip_rate <= 1.0 &&
                   cfg_.jitter_probability >= 0.0 &&
                   cfg_.jitter_probability <= 1.0,
               "ChaosProxy: probabilities must be in [0, 1]");
  HBRP_REQUIRE(cfg_.kill_after_min_bytes <= cfg_.kill_after_max_bytes,
               "ChaosProxy: kill byte range inverted");
}

ChaosProxy::~ChaosProxy() = default;

void ChaosProxy::accept_pending() {
  for (;;) {
    net::Socket s = listener_.accept();
    if (!s.valid()) return;
    auto r = std::make_unique<Relay>();
    r->down = std::move(s);
    r->up = net::connect_loopback(cfg_.upstream_port);
    // The fault schedule is a pure function of (seed, connection ordinal):
    // a sequentially reconnecting client sees the same chaos every run.
    r->rng = math::Rng(cfg_.seed ^ (0x9E3779B97F4A7C15ULL * (next_ordinal_ + 1)));
    ++next_ordinal_;
    if (!r->up.valid()) continue;  // upstream refused: drop the client too
    if (r->rng.bernoulli(cfg_.kill_probability))
      r->kill_after = static_cast<std::uint64_t>(r->rng.uniform_int(
          static_cast<std::int64_t>(cfg_.kill_after_min_bytes),
          static_cast<std::int64_t>(cfg_.kill_after_max_bytes)));
    stats_.conns_relayed.fetch_add(1, std::memory_order_relaxed);
    relays_.push_back(std::move(r));
  }
}

void ChaosProxy::kill_relay(Relay& r) {
  r.down.close();
  r.up.close();
  r.alive = false;
  stats_.conns_killed.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ChaosProxy::pump_relay(Relay& r) {
  if (!r.alive) return 0;
  const auto now = Clock::now();
  std::size_t moved = 0;

  // Finish the upstream non-blocking connect before relaying anything.
  if (r.up_connecting) {
    pollfd pfd{r.up.fd(), POLLOUT, 0};
    if (::poll(&pfd, 1, 0) > 0 && (pfd.revents & POLLOUT) != 0) {
      if (!net::connect_finished(r.up.fd())) {
        r.down.close();
        r.up.close();
        r.alive = false;
        return 0;
      }
      r.up_connecting = false;
    } else {
      return 0;
    }
  }

  const auto ingest = [&](int fd, Relay::Direction& dir) {
    if (dir.peer_eof) return;
    unsigned char buf[kReadChunk];
    for (;;) {
      const net::IoResult res = net::recv_some(fd, buf);
      if (res.n == 0) {
        if (res.eof || res.error) dir.peer_eof = true;
        return;
      }
      std::vector<unsigned char> block(buf, buf + res.n);
      if (cfg_.bit_flip_rate > 0.0) {
        for (unsigned char& b : block) {
          if (r.rng.bernoulli(cfg_.bit_flip_rate)) {
            b = static_cast<unsigned char>(b ^ (1u << r.rng.uniform_index(8)));
            stats_.bits_flipped.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      auto release = now;
      if (cfg_.jitter_max_ms > 0 && r.rng.bernoulli(cfg_.jitter_probability)) {
        release += std::chrono::milliseconds(
            r.rng.uniform_int(0, cfg_.jitter_max_ms));
        stats_.blocks_delayed.fetch_add(1, std::memory_order_relaxed);
      }
      // FIFO invariant: a block never releases before its predecessor.
      if (!dir.q.empty() && dir.q.back().release > release)
        release = dir.q.back().release;
      dir.q.push_back({std::move(block), 0, release});
      r.relayed += res.n;
      stats_.bytes_relayed.fetch_add(res.n, std::memory_order_relaxed);
    }
  };
  ingest(r.down.fd(), r.to_up);
  ingest(r.up.fd(), r.to_down);

  if (r.kill_after && r.relayed >= *r.kill_after) {
    kill_relay(r);
    return moved;
  }

  const auto drain = [&](Relay::Direction& dir, int fd) {
    while (!dir.q.empty()) {
      Relay::Block& blk = dir.q.front();
      if (blk.release > now) return;
      std::span<const unsigned char> span(blk.bytes);
      span = span.subspan(blk.head);
      if (cfg_.max_burst > 0 && span.size() > cfg_.max_burst)
        span = span.first(cfg_.max_burst);
      const net::IoResult res = net::send_some(fd, span);
      if (res.n == 0) {
        if (res.error) {
          r.down.close();
          r.up.close();
          r.alive = false;
        }
        return;
      }
      blk.head += res.n;
      moved += res.n;
      if (blk.head >= blk.bytes.size()) dir.q.pop_front();
      // One burst per poll round keeps the fragmentation honest: the
      // receiver must reassemble across genuinely separate reads.
      if (cfg_.max_burst > 0) return;
    }
  };
  drain(r.to_up, r.up.fd());
  if (r.alive) drain(r.to_down, r.down.fd());

  // A direction whose source is gone closes once its backlog is flushed.
  if (r.alive && (r.to_up.peer_eof || r.to_down.peer_eof) &&
      r.to_up.q.empty() && r.to_down.q.empty()) {
    r.down.close();
    r.up.close();
    r.alive = false;
  }
  return moved;
}

std::size_t ChaosProxy::poll_once(int timeout_ms) {
  // Shorten the wait to the earliest staged release so jitter resolves
  // promptly; pending bursts (max_burst pacing) also cap the wait.
  const auto now = Clock::now();
  int wait = timeout_ms;
  for (const auto& r : relays_) {
    if (!r->alive) continue;
    for (const Relay::Direction* dir : {&r->to_up, &r->to_down}) {
      if (dir->q.empty()) continue;
      const auto& blk = dir->q.front();
      const int ms = blk.release <= now
                         ? 0
                         : static_cast<int>(
                               std::chrono::duration_cast<
                                   std::chrono::milliseconds>(blk.release -
                                                              now)
                                   .count()) +
                               1;
      wait = std::min(wait, ms);
    }
    if (r->up_connecting) wait = std::min(wait, 1);
  }

  std::vector<pollfd> fds;
  fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
  for (const auto& r : relays_) {
    if (!r->alive) continue;
    short down_ev = POLLIN;
    short up_ev = r->up_connecting ? POLLOUT : POLLIN;
    if (!r->to_down.q.empty()) down_ev |= POLLOUT;
    if (!r->to_up.q.empty() && !r->up_connecting) up_ev |= POLLOUT;
    fds.push_back(pollfd{r->down.fd(), down_ev, 0});
    fds.push_back(pollfd{r->up.fd(), up_ev, 0});
  }
  (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               std::max(wait, 0));

  if ((fds[0].revents & POLLIN) != 0) accept_pending();
  std::size_t moved = 0;
  for (auto& r : relays_) moved += pump_relay(*r);
  std::erase_if(relays_, [](const std::unique_ptr<Relay>& r) {
    return !r->alive;
  });
  return moved;
}

void ChaosProxy::serve() {
  while (!stop_.load(std::memory_order_relaxed)) (void)poll_once(5);
}

}  // namespace hbrp::scenario
