// scenario::runner — replays a compiled scenario through the system's two
// ingest paths and scores the outcome against AAMI-class ground truth.
//
// Paths:
//   run_direct  the reference: sanitize the scenario's double stream with
//               the exact node-boundary rule, offer the codes straight
//               into a FleetEngine session, pump to completion. No
//               sockets; deterministic for any thread/shard count.
//   run_wire    the deployment path: SensorNodeClient -> (optional
//               ChaosProxy) -> GatewayServer over loopback, gateway and
//               proxy each on their own serve() thread, the client driven
//               by the caller. StreamEverything returns the gateway's
//               verdict stream (bit-identical to run_direct when the
//               chaos is lossless); Selective returns the upload-verdict
//               stream plus the node's local log.
//
// Scoring maps each delivered verdict to the nearest truth beat within a
// tolerance window and fills a core::AamiConfusion, from which the
// paper-level NDR/ARR plus miss/false rates fall out. Truth beats flagged
// `obscured` (inside a lead-off flat-line) are excluded from the miss
// accounting: no detector can see them, so they would only add noise to
// the regression gate.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "embedded/bundle.hpp"
#include "net/client.hpp"
#include "scenario/chaos.hpp"
#include "scenario/episodes.hpp"

namespace hbrp::scenario {

/// One delivered verdict, normalized across paths for exact comparison.
struct Verdict {
  std::uint64_t seq = 0;
  std::uint64_t r_peak = 0;
  std::uint8_t beat_class = 0;  ///< ecg::BeatClass
  std::uint8_t quality = 0;     ///< dsp::SignalQuality
  bool operator==(const Verdict&) const = default;
};

std::vector<Verdict> run_direct(const embedded::EmbeddedClassifier& clf,
                                const ScenarioStream& stream,
                                std::size_t threads = 1,
                                std::size_t shards = 1);

struct WireRunResult {
  std::vector<Verdict> verdicts;
  net::TxStats tx;
  std::vector<std::uint8_t> local_log;  ///< selective: 1-byte beat records
  std::uint64_t gateway_full_beat_dups = 0;
  std::uint64_t gateway_drift_escalations = 0;  ///< unique, dedup-guarded
  std::uint64_t chaos_kills = 0;
  std::uint64_t chaos_bit_flips = 0;
  /// Client drained (all uploads verdict-confirmed) and closed cleanly.
  bool completed = false;
};

/// `chaos` = nullptr wires the client straight to the gateway. With chaos,
/// cfg.upstream_port is filled in by the runner. `drain_budget_ms` bounds
/// the retransmission endgame under connection-killing chaos.
/// `node_template`, when given, seeds the client's NodeConfig (drift
/// escalation, monitor geometry, buffer caps...) — the runner still
/// overwrites port and policy.
WireRunResult run_wire(const embedded::EmbeddedClassifier& clf,
                       const ScenarioStream& stream, net::TxPolicy policy,
                       const ChaosConfig* chaos = nullptr,
                       std::size_t threads = 1, std::size_t shards = 1,
                       int drain_budget_ms = 30000,
                       const net::NodeConfig* node_template = nullptr);

/// AAMI-class outcome of one verdict stream against one truth track.
struct ScenarioScore {
  core::AamiConfusion confusion;
  std::size_t truth_beats = 0;
  std::size_t obscured = 0;        ///< truth inside lead-off (not scored)
  std::size_t matched = 0;
  std::size_t missed = 0;          ///< unobscured truth with no verdict
  std::size_t false_detections = 0;
  double ndr = 0.0;   ///< confusion.ndr(): normal kept normal
  double arr = 0.0;   ///< confusion.arr(): abnormal recognized (miss-aware)
  double miss_rate = 0.0;   ///< missed / (truth_beats - obscured)
  double false_rate = 0.0;  ///< false_detections / verdicts
};

ScenarioScore score_verdicts(const ScenarioStream& stream,
                             const std::vector<Verdict>& verdicts,
                             double tolerance_s = 0.15);

}  // namespace hbrp::scenario
