// Scripted adversarial ward episodes.
//
// The paper validates on clean MIT-BIH excerpts; the systematic review in
// PAPERS.md shows that is the norm — and that robustness under realistic
// degradation is almost never regression-tested. This module closes that
// gap on the generator side: a ScenarioSpec names a seeded script of
// adversarial episodes, and build_scenario() compiles it into one
// deterministic sample stream with AAMI-class ground truth:
//
//   AfibIrregularRr  highly irregular RR (no respiratory rhythm, wide
//                    uniform RR spread) — stresses every RR-statistics
//                    assumption a detector makes (cf. SNIPPETS.md Snippet 1,
//                    whose AF discriminator is exactly RR dispersion);
//   SustainedVt      a run of fast wide V beats (~170 bpm) opened by one
//                    fusion beat (AAMI F): the N/V blend at onset is the
//                    classic hard case;
//   PacedRhythm      narrow pacemaker spikes before each QRS; AAMI Q
//                    ground truth (paced beats are unclassifiable to a
//                    model that never saw them);
//   ArtefactStorm    motion/EMG bursts via testing::FaultInjector
//                    (Gaussian + impulse trains — Snippet 2's artefact-gate
//                    territory: the right answer is to distrust, not
//                    classify);
//   ElectrodeDrop    lead-off flat-line bursts with brief recoveries;
//   ClockSkew        the node's sample clock runs fast/slow by a small
//                    factor — the whole episode is resampled, annotations
//                    move with it;
//   RateMismatch     a mid-record firmware misconfiguration: one segment
//                    is resampled by a large factor (e.g. 300 Hz data on a
//                    360 Hz contract), splicing cleanly back afterwards;
//   SupraventricularRun  a run of premature narrow-QRS beats (atrial
//                    ectopy): normal morphology arriving far too early,
//                    AAMI S ground truth — the class the AAMI robustness
//                    gate previously never saw (zero denominator).
//
// Everything is deterministic in ScenarioSpec::seed: same spec, same
// stream, bit for bit — the property the wire-path replay and the CI
// robustness gate both build on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "ecg/synth.hpp"

namespace hbrp::scenario {

enum class EpisodeKind : std::uint8_t {
  AfibIrregularRr,
  SustainedVt,
  PacedRhythm,
  ArtefactStorm,
  ElectrodeDrop,
  ClockSkew,
  RateMismatch,
  SupraventricularRun,
  MorphologyShift,
};

const char* to_string(EpisodeKind kind);

/// One adversarial episode over [start_s, start_s + duration_s) of the
/// scenario timeline. `magnitude` is kind-specific:
///   ArtefactStorm  noise sigma scale (adu ~ 120 * magnitude)
///   ElectrodeDrop  unused (bursts are scripted by the seed)
///   ClockSkew      fractional skew (0.03 = clock 3% fast)
///   RateMismatch   resample factor (0.833 = 300 Hz data on a 360 Hz link)
///   MorphologyShift  blend amplitude of the fused novel wavefront
///   others         unused
struct Episode {
  EpisodeKind kind = EpisodeKind::ArtefactStorm;
  double start_s = 0.0;
  double duration_s = 0.0;
  double magnitude = 1.0;
};

struct ScenarioSpec {
  std::string name;
  std::uint64_t seed = 1;
  double duration_s = 60.0;
  int fs_hz = dsp::kMitBihFs;
  double heart_rate_bpm = 75.0;
  /// Background beat mix outside rhythm episodes.
  ecg::RecordProfile background = ecg::RecordProfile::NormalSinus;
  std::vector<Episode> episodes;
  /// Baseline acquisition-noise scale fed to the renderer.
  double noise_scale = 0.6;
};

/// Ground truth for one scripted beat on the final stream timeline.
struct TruthBeat {
  std::size_t sample = 0;         ///< R-peak index in ScenarioStream::samples
  ecg::BeatClass cls = ecg::BeatClass::N;  ///< pipeline-level class
  core::AamiClass aami = core::AamiClass::N;
  /// The beat lies inside a lead-off/saturation burst: detection is
  /// physically impossible, so a miss here is not a detector failure.
  bool obscured = false;
};

/// RR-interval statistics over the scripted rhythm (SNIPPETS.md Snippet 1
/// idiom: mean/SDNN/RMSSD/pNN50 are the features an AF discriminator runs
/// on, reported per scenario so irregularity is visible in the bench table).
struct RrStats {
  double mean_ms = 0.0;
  double sdnn_ms = 0.0;
  double rmssd_ms = 0.0;
  double pnn50 = 0.0;
};

/// One compiled scenario: the adversarial sample stream (doubles — the
/// untrusted raw-ADC boundary; NaN/Inf faults survive into it) plus truth.
struct ScenarioStream {
  int fs_hz = dsp::kMitBihFs;
  std::vector<double> samples;
  std::vector<TruthBeat> truth;
  RrStats rr;
  std::size_t artefact_samples = 0;  ///< samples under any fault event
};

/// Compiles a spec into its stream. Deterministic in spec.seed.
ScenarioStream build_scenario(const ScenarioSpec& spec);

/// RR statistics of a beat-position sequence (sample indices at `fs_hz`).
RrStats rr_statistics(const std::vector<std::size_t>& r_peaks, int fs_hz);

/// The named suite the bench table and CI soak run: one scenario per
/// episode kind plus a clean-ward control, all `duration_s` long and
/// seeded from `seed_base` (scenario i uses seed_base + i).
std::vector<ScenarioSpec> standard_scenarios(double duration_s,
                                             std::uint64_t seed_base);

}  // namespace hbrp::scenario
