#include "scenario/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <span>
#include <thread>

#include "math/check.hpp"
#include "net/gateway.hpp"
#include "service/fleet.hpp"

namespace hbrp::scenario {

namespace {

using Clock = std::chrono::steady_clock;

/// The exact integer codes the node boundary admits for this stream —
/// shared by both paths so their inputs are identical by construction.
std::vector<dsp::Sample> sanitize_stream(const ScenarioStream& stream) {
  const core::MonitorConfig mc;
  std::vector<dsp::Sample> codes;
  codes.reserve(stream.samples.size());
  dsp::Sample last = 0;
  for (const double x : stream.samples)
    codes.push_back(
        net::SensorNodeClient::sanitize(x, mc.quality, last, nullptr));
  return codes;
}

}  // namespace

std::vector<Verdict> run_direct(const embedded::EmbeddedClassifier& clf,
                                const ScenarioStream& stream,
                                std::size_t threads, std::size_t shards) {
  const auto codes = sanitize_stream(stream);
  service::FleetConfig cfg;
  cfg.threads = threads;
  cfg.shards = shards;
  service::FleetEngine engine(clf, cfg);
  std::vector<Verdict> out;
  const auto id = engine.open_session([&out](const service::SessionResult& r) {
    out.push_back(Verdict{r.sequence,
                          static_cast<std::uint64_t>(r.beat.r_peak),
                          static_cast<std::uint8_t>(r.beat.predicted),
                          static_cast<std::uint8_t>(r.beat.quality)});
  });
  HBRP_REQUIRE(id.has_value(), "run_direct: session refused");
  std::size_t off = 0;
  const std::span<const dsp::Sample> all(codes);
  while (off < codes.size()) {
    const std::size_t n = std::min<std::size_t>(1024, codes.size() - off);
    const auto res = engine.offer(*id, all.subspan(off, n));
    off += res.accepted;
    engine.pump();
  }
  engine.drain();
  HBRP_REQUIRE(engine.close_session(*id), "run_direct: close failed");
  return out;
}

WireRunResult run_wire(const embedded::EmbeddedClassifier& clf,
                       const ScenarioStream& stream, net::TxPolicy policy,
                       const ChaosConfig* chaos, std::size_t threads,
                       std::size_t shards, int drain_budget_ms,
                       const net::NodeConfig* node_template) {
  net::GatewayConfig gcfg;
  // The gateway's parallelism knob is its reactor count (fleet shards are
  // pinned 1:1 to reactors by its config sanitizer), so map the wider of
  // the grid's threads/shards onto it — the sweeps keep varying the wire
  // path's parallel layout.
  gcfg.reactors = std::max<std::size_t>(1, std::max(threads, shards));
  net::GatewayServer gw(clf, gcfg);
  std::thread gw_thread([&gw] { gw.serve(); });

  std::unique_ptr<ChaosProxy> proxy;
  std::thread proxy_thread;
  if (chaos != nullptr) {
    ChaosConfig ccfg = *chaos;
    ccfg.upstream_port = gw.port();
    proxy = std::make_unique<ChaosProxy>(ccfg);
    proxy_thread = std::thread([&proxy] { proxy->serve(); });
  }

  WireRunResult out;
  {
    net::NodeConfig ncfg =
        node_template != nullptr ? *node_template : net::NodeConfig{};
    ncfg.port = proxy ? proxy->port() : gw.port();
    ncfg.policy = policy;
    net::SensorNodeClient client(clf, ncfg);
    client.set_verdict_sink(
        [&out](std::uint64_t seq, const net::BeatVerdictMsg& v) {
          out.verdicts.push_back(
              Verdict{seq, v.r_peak, v.beat_class, v.quality});
        });

    // Push in slices with interleaved polls so the send queue stays under
    // its cap even while chaos stalls or kills the link.
    const std::span<const double> all(stream.samples);
    std::size_t off = 0;
    while (off < all.size()) {
      const std::size_t n = std::min<std::size_t>(2048, all.size() - off);
      client.push(all.subspan(off, n));
      off += n;
      client.poll_once(0);
      while (client.pending_bytes() > (1u << 19)) client.poll_once(2);
    }
    client.finish();
    const bool drained = client.drain(drain_budget_ms);
    client.close(5000);
    out.completed = drained && client.state() == net::LinkState::Closed &&
                    client.unacked_full_beats() == 0;
    out.tx = client.stats();
    out.local_log = client.local_log();
  }

  if (proxy) {
    proxy->stop();
    proxy_thread.join();
    out.chaos_kills = proxy->stats().conns_killed.load();
    out.chaos_bit_flips = proxy->stats().bits_flipped.load();
  }
  gw.stop();
  gw_thread.join();
  out.gateway_full_beat_dups = gw.stats().full_beat_dups.load();
  out.gateway_drift_escalations = gw.stats().drift_escalations_rx.load();
  return out;
}

ScenarioScore score_verdicts(const ScenarioStream& stream,
                             const std::vector<Verdict>& verdicts,
                             double tolerance_s) {
  ScenarioScore score;
  score.truth_beats = stream.truth.size();
  const auto tol = static_cast<std::uint64_t>(
      std::lround(tolerance_s * stream.fs_hz));

  // Verdicts arrive in r_peak order (the monitor emits beats in stream
  // order); truth is built sorted. Greedy nearest-match under `tol` with
  // each truth beat claimable once is then a two-pointer sweep.
  std::vector<bool> claimed(stream.truth.size(), false);
  std::size_t cursor = 0;
  for (const Verdict& v : verdicts) {
    // Advance past truth beats that can no longer match anything.
    while (cursor < stream.truth.size() &&
           stream.truth[cursor].sample + tol < v.r_peak)
      ++cursor;
    // Candidates: cursor (first within reach) and its successor; pick the
    // closer unclaimed one.
    std::size_t best = stream.truth.size();
    std::uint64_t best_dist = tol + 1;
    for (std::size_t j = cursor;
         j < stream.truth.size() && j < cursor + 2; ++j) {
      if (claimed[j]) continue;
      const std::uint64_t t = stream.truth[j].sample;
      const std::uint64_t dist = t > v.r_peak ? t - v.r_peak : v.r_peak - t;
      if (dist <= tol && dist < best_dist) {
        best = j;
        best_dist = dist;
      }
    }
    const auto pred =
        core::to_aami(static_cast<ecg::BeatClass>(v.beat_class));
    if (best < stream.truth.size()) {
      claimed[best] = true;
      ++score.matched;
      score.confusion.add(stream.truth[best].aami, pred);
    } else {
      ++score.false_detections;
      score.confusion.add_false_detection(pred);
    }
  }
  for (std::size_t j = 0; j < stream.truth.size(); ++j) {
    if (claimed[j]) continue;
    if (stream.truth[j].obscured) {
      ++score.obscured;
      continue;  // physically undetectable; not a detector failure
    }
    ++score.missed;
    score.confusion.add_missed(stream.truth[j].aami);
  }
  score.ndr = score.confusion.ndr();
  score.arr = score.confusion.arr();
  const std::size_t eligible = score.truth_beats - score.obscured;
  score.miss_rate = eligible == 0
                        ? 0.0
                        : static_cast<double>(score.missed) /
                              static_cast<double>(eligible);
  score.false_rate = verdicts.empty()
                         ? 0.0
                         : static_cast<double>(score.false_detections) /
                               static_cast<double>(verdicts.size());
  return score;
}

}  // namespace hbrp::scenario
