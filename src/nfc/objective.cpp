#include "nfc/objective.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "math/check.hpp"

namespace hbrp::nfc {

TrainingObjective::TrainingObjective(NeuroFuzzyClassifier& nfc,
                                     const math::Mat& u,
                                     const std::vector<ecg::BeatClass>& labels,
                                     double width_decay,
                                     std::vector<double> log_sigma_ref)
    : nfc_(nfc),
      u_(u),
      labels_(labels),
      width_decay_(width_decay),
      log_sigma_ref_(std::move(log_sigma_ref)) {
  HBRP_REQUIRE(u_.cols() == nfc_.coefficients(),
               "TrainingObjective: coefficient count mismatch");
  HBRP_REQUIRE(u_.rows() == labels_.size(),
               "TrainingObjective: row/label count mismatch");
  HBRP_REQUIRE(width_decay_ == 0.0 ||
                   log_sigma_ref_.size() ==
                       nfc_.coefficients() * ecg::kNumClasses,
               "TrainingObjective: width-decay reference size mismatch");
}

std::size_t TrainingObjective::dimension() const {
  return nfc_.param_count();
}

double TrainingObjective::eval(std::span<const double> params,
                               std::span<double> grad) {
    nfc_.from_params(params);
    std::fill(grad.begin(), grad.end(), 0.0);
    const std::size_t kcoef = nfc_.coefficients();
    const std::size_t n_mfs = kcoef * ecg::kNumClasses;
    const double inv_n = 1.0 / static_cast<double>(u_.rows());
    double loss = 0.0;

    for (std::size_t row = 0; row < u_.rows(); ++row) {
      const auto x = u_.row(row);
      const auto lf = nfc_.log_fuzzy(x);
      const double top = *std::max_element(lf.begin(), lf.end());
      std::array<double, ecg::kNumClasses> prob{};
      double z = 0.0;
      for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
        prob[l] = std::exp(lf[l] - top);
        z += prob[l];
      }
      for (double& p : prob) p /= z;
      const auto y = static_cast<std::size_t>(labels_[row]);
      loss -= inv_n * (lf[y] - top - std::log(z));

      // dL/dlogf_l = (p_l - [l==y]) / n; chain through the Gaussian MFs.
      for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
        const double dl = inv_n * (prob[l] - (l == y ? 1.0 : 0.0));
        if (dl == 0.0) continue;
        for (std::size_t k = 0; k < kcoef; ++k) {
          const GaussianMF& m = nfc_.mf(k, l);
          const double diff = x[k] - m.center;
          const double inv_s2 = 1.0 / (m.sigma * m.sigma);
          const std::size_t idx = k * ecg::kNumClasses + l;
          // d logf / d c = (x - c) / sigma^2
          grad[idx] += dl * diff * inv_s2;
          // d logf / d log sigma = (x - c)^2 / sigma^2
          grad[n_mfs + idx] += dl * diff * diff * inv_s2;
        }
      }
    }

    // Width decay: quadratic pull of log-sigma toward the statistics
    // initialization (see TrainOptions::width_decay).
    if (width_decay_ > 0.0) {
      for (std::size_t i = 0; i < n_mfs; ++i) {
        const double dev = params[n_mfs + i] - log_sigma_ref_[i];
        loss += width_decay_ * dev * dev;
        grad[n_mfs + i] += 2.0 * width_decay_ * dev;
      }
    }
    return loss;
}

}  // namespace hbrp::nfc
