#include "nfc/train.hpp"

#include "nfc/objective.hpp"

#include <algorithm>
#include <cmath>

#include "math/check.hpp"
#include "math/stats.hpp"

namespace hbrp::nfc {

namespace {

void validate_dataset(const NeuroFuzzyClassifier& nfc, const math::Mat& u,
                      const std::vector<ecg::BeatClass>& labels) {
  HBRP_REQUIRE(u.cols() == nfc.coefficients(),
               "nfc::train: coefficient count mismatch");
  HBRP_REQUIRE(u.rows() == labels.size(),
               "nfc::train: row/label count mismatch");
  HBRP_REQUIRE(u.rows() >= 2, "nfc::train: need at least two beats");
  for (const ecg::BeatClass c : labels)
    HBRP_REQUIRE(c != ecg::BeatClass::Unknown,
                 "nfc::train: Unknown cannot be a training label");
}

}  // namespace

void init_from_statistics(NeuroFuzzyClassifier& nfc, const math::Mat& u,
                          const std::vector<ecg::BeatClass>& labels,
                          double sigma_floor_frac) {
  validate_dataset(nfc, u, labels);
  HBRP_REQUIRE(sigma_floor_frac > 0.0,
               "init_from_statistics(): sigma floor must be positive");

  for (std::size_t k = 0; k < nfc.coefficients(); ++k) {
    math::RunningStats global;
    std::array<math::RunningStats, ecg::kNumClasses> per_class;
    for (std::size_t row = 0; row < u.rows(); ++row) {
      const double x = u.at(row, k);
      global.add(x);
      per_class[static_cast<std::size_t>(labels[row])].add(x);
    }
    const double spread = std::max(global.stddev(), 1e-12);
    for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
      HBRP_REQUIRE(per_class[l].count() >= 1,
                   "init_from_statistics(): a class has no training beats");
      GaussianMF& m = nfc.mf(k, l);
      m.center = per_class[l].mean();
      m.sigma = std::max(per_class[l].stddev(), sigma_floor_frac * spread);
    }
  }
}

double cross_entropy(const NeuroFuzzyClassifier& nfc, const math::Mat& u,
                     const std::vector<ecg::BeatClass>& labels) {
  validate_dataset(nfc, u, labels);
  double loss = 0.0;
  for (std::size_t row = 0; row < u.rows(); ++row) {
    const auto lf = nfc.log_fuzzy(u.row(row));
    const double top = *std::max_element(lf.begin(), lf.end());
    double z = 0.0;
    for (const double v : lf) z += std::exp(v - top);
    const auto y = static_cast<std::size_t>(labels[row]);
    loss -= lf[y] - top - std::log(z);
  }
  return loss / static_cast<double>(u.rows());
}

TrainResult train(NeuroFuzzyClassifier& nfc, const math::Mat& u,
                  const std::vector<ecg::BeatClass>& labels,
                  const TrainOptions& options) {
  init_from_statistics(nfc, u, labels, options.sigma_floor_frac);
  std::vector<double> params = nfc.to_params();
  std::vector<double> log_sigma_ref(params.begin() +
                                        static_cast<std::ptrdiff_t>(
                                            params.size() / 2),
                                    params.end());
  TrainingObjective objective(nfc, u, labels, options.width_decay,
                              std::move(log_sigma_ref));
  const opt::ScgResult scg = opt::minimize_scg(objective, params, options.scg);
  nfc.from_params(params);

  TrainResult result;
  result.initial_loss = scg.initial_loss;
  result.final_loss = scg.final_loss;
  result.iterations = scg.iterations;
  result.converged = scg.converged;
  return result;
}

}  // namespace hbrp::nfc
