#include "nfc/classifier.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/fuzzify.hpp"
#include "math/check.hpp"

namespace hbrp::nfc {

ecg::BeatClass defuzzify(const FuzzyValues& fuzzy, double alpha) {
  HBRP_REQUIRE(alpha >= 0.0 && alpha <= 1.0,
               "defuzzify(): alpha must be in [0, 1]");
  std::size_t best = 0;
  for (std::size_t l = 1; l < fuzzy.size(); ++l)
    if (fuzzy[l] > fuzzy[best]) best = l;
  double m2 = -1.0;
  double sum = 0.0;
  for (std::size_t l = 0; l < fuzzy.size(); ++l) {
    sum += fuzzy[l];
    if (l != best) m2 = std::max(m2, fuzzy[l]);
  }
  if (fuzzy[best] - m2 >= alpha * sum)
    return static_cast<ecg::BeatClass>(best);
  return ecg::BeatClass::Unknown;
}

NeuroFuzzyClassifier::NeuroFuzzyClassifier(std::size_t coefficients)
    : coefficients_(coefficients),
      mfs_(coefficients * ecg::kNumClasses) {
  HBRP_REQUIRE(coefficients >= 1,
               "NeuroFuzzyClassifier: needs at least one coefficient");
}

GaussianMF& NeuroFuzzyClassifier::mf(std::size_t k, std::size_t cls) {
  HBRP_REQUIRE(k < coefficients_ && cls < ecg::kNumClasses,
               "NeuroFuzzyClassifier::mf(): index out of range");
  return mfs_[k * ecg::kNumClasses + cls];
}

const GaussianMF& NeuroFuzzyClassifier::mf(std::size_t k,
                                           std::size_t cls) const {
  HBRP_REQUIRE(k < coefficients_ && cls < ecg::kNumClasses,
               "NeuroFuzzyClassifier::mf(): index out of range");
  return mfs_[k * ecg::kNumClasses + cls];
}

std::array<double, ecg::kNumClasses> NeuroFuzzyClassifier::log_fuzzy(
    std::span<const double> u) const {
  HBRP_REQUIRE(u.size() == coefficients_,
               "NeuroFuzzyClassifier: input size mismatch");
  std::array<double, ecg::kNumClasses> acc{};
  for (std::size_t k = 0; k < coefficients_; ++k)
    for (std::size_t l = 0; l < ecg::kNumClasses; ++l)
      acc[l] += mfs_[k * ecg::kNumClasses + l].log_grade(u[k]);
  return acc;
}

FuzzyValues NeuroFuzzyClassifier::fuzzy(std::span<const double> u) const {
  const auto lf = log_fuzzy(u);
  const double top = *std::max_element(lf.begin(), lf.end());
  FuzzyValues out{};
  for (std::size_t l = 0; l < out.size(); ++l) out[l] = std::exp(lf[l] - top);
  return out;
}

ecg::BeatClass NeuroFuzzyClassifier::classify(std::span<const double> u,
                                              double alpha) const {
  return defuzzify(fuzzy(u), alpha);
}

void NeuroFuzzyClassifier::classify_batch(std::span<const double> u,
                                          std::size_t count, double alpha,
                                          std::span<ecg::BeatClass> out) const {
  HBRP_REQUIRE(u.size() == count * coefficients_,
               "NeuroFuzzyClassifier::classify_batch(): input size mismatch");
  HBRP_REQUIRE(out.size() >= count,
               "NeuroFuzzyClassifier::classify_batch(): output too small");
  static_assert(ecg::kNumClasses == kernels::kFuzzyClasses);

  // SoA parameter tables for the batch kernel: [class][coefficient] centres
  // and precomputed -1/(2 sigma^2). Two small allocations per batch call,
  // amortized over `count` beats.
  const std::size_t k = coefficients_;
  std::vector<double> centers(kernels::kFuzzyClasses * k);
  std::vector<double> nhiv(kernels::kFuzzyClasses * k);
  for (std::size_t l = 0; l < kernels::kFuzzyClasses; ++l)
    for (std::size_t j = 0; j < k; ++j) {
      const GaussianMF& m = mfs_[j * ecg::kNumClasses + l];
      centers[l * k + j] = m.center;
      nhiv[l * k + j] = -0.5 / (m.sigma * m.sigma);
    }

  constexpr std::size_t kChunk = 256;
  std::array<double, kChunk * kernels::kFuzzyClasses> lf;
  for (std::size_t done = 0; done < count; done += kChunk) {
    const std::size_t n = std::min(kChunk, count - done);
    kernels::log_fuzzy_batch(u.data() + done * k, n, k, centers.data(),
                             nhiv.data(), lf.data());
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = lf.data() + i * kernels::kFuzzyClasses;
      const double top = std::max(row[0], std::max(row[1], row[2]));
      FuzzyValues f{};
      for (std::size_t l = 0; l < f.size(); ++l) f[l] = std::exp(row[l] - top);
      out[done + i] = defuzzify(f, alpha);
    }
  }
}

std::vector<double> NeuroFuzzyClassifier::to_params() const {
  std::vector<double> p;
  p.reserve(param_count());
  for (const GaussianMF& m : mfs_) p.push_back(m.center);
  for (const GaussianMF& m : mfs_) {
    HBRP_REQUIRE(m.sigma > 0.0, "to_params(): sigma must be positive");
    p.push_back(std::log(m.sigma));
  }
  return p;
}

void NeuroFuzzyClassifier::from_params(std::span<const double> params) {
  HBRP_REQUIRE(params.size() == param_count(),
               "from_params(): parameter count mismatch");
  const std::size_t n = mfs_.size();
  for (std::size_t i = 0; i < n; ++i) {
    mfs_[i].center = params[i];
    mfs_[i].sigma = std::exp(params[n + i]);
  }
}

}  // namespace hbrp::nfc
