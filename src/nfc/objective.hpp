// The NFC training objective, exposed for optimizer studies.
//
// Softmax cross-entropy over the log-fuzzy class values, with analytic
// gradients with respect to [centers..., log-sigmas...] and an optional
// width-decay term pulling log-sigma toward its statistics initialization
// (see TrainOptions::width_decay for why). nfc::train() drives this with
// SCG; bench_ablation_training also drives it with plain gradient descent.
#pragma once

#include <vector>

#include "ecg/types.hpp"
#include "math/mat.hpp"
#include "nfc/classifier.hpp"
#include "opt/objective.hpp"

namespace hbrp::nfc {

class TrainingObjective final : public opt::Objective {
 public:
  /// `nfc` is the classifier being trained (written through on every eval);
  /// `u` holds one projected beat per row; labels must exclude Unknown.
  /// `log_sigma_ref` (one entry per MF, coefficient-major) anchors the
  /// width-decay term; pass an empty vector with width_decay == 0 to
  /// disable.
  TrainingObjective(NeuroFuzzyClassifier& nfc, const math::Mat& u,
                    const std::vector<ecg::BeatClass>& labels,
                    double width_decay, std::vector<double> log_sigma_ref);

  std::size_t dimension() const override;
  double eval(std::span<const double> params,
              std::span<double> grad) override;

 private:
  NeuroFuzzyClassifier& nfc_;
  const math::Mat& u_;
  const std::vector<ecg::BeatClass>& labels_;
  double width_decay_ = 0.0;
  std::vector<double> log_sigma_ref_;
};

}  // namespace hbrp::nfc
