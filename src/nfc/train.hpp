// NFC training: statistics-based initialization + SCG refinement.
//
// The training loss is the cross-entropy of the softmax over log-fuzzy
// values against the beat labels. Because log f_l is exactly the
// (unnormalized) log-likelihood of a diagonal Gaussian per class, the
// statistics initialization (per-class mean/std of each coefficient) already
// lands near a good optimum and SCG then refines centers and widths jointly,
// which is what lets the paper train on only 150 beats per class.
#pragma once

#include <vector>

#include "ecg/types.hpp"
#include "math/mat.hpp"
#include "nfc/classifier.hpp"
#include "opt/scg.hpp"

namespace hbrp::nfc {

struct TrainOptions {
  opt::ScgOptions scg;
  /// Lower bound applied to initialization sigmas, as a fraction of the
  /// coefficient's global spread (degenerate classes must not spike).
  double sigma_floor_frac = 0.01;
  /// L2 decay of log-sigma toward its statistics initialization. Keeps the
  /// MFs at data-spread widths instead of letting maximum likelihood shrink
  /// them until classification decisions ride on far Gaussian tails — tails
  /// the embedded linearized MFs cannot represent (their grade saturates at
  /// 1/65535 beyond 2S). Without this term the float classifier looks
  /// better but quantizes terribly; the paper's small NDR-PC vs NDR-WBSN
  /// gap (Table II) implies tail-independent decision margins.
  double width_decay = 0.0;
};

struct TrainResult {
  double initial_loss = 0.0;
  double final_loss = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Sets each MF to the mean/std of its class's coefficient values.
/// `u` holds one projected beat per row; labels must contain every class.
void init_from_statistics(NeuroFuzzyClassifier& nfc, const math::Mat& u,
                          const std::vector<ecg::BeatClass>& labels,
                          double sigma_floor_frac = 0.01);

/// Cross-entropy training loss of an NFC on a projected dataset (useful for
/// reporting / tests independent of the optimizer).
double cross_entropy(const NeuroFuzzyClassifier& nfc, const math::Mat& u,
                     const std::vector<ecg::BeatClass>& labels);

/// Full training: statistics init followed by SCG refinement.
TrainResult train(NeuroFuzzyClassifier& nfc, const math::Mat& u,
                  const std::vector<ecg::BeatClass>& labels,
                  const TrainOptions& options = {});

}  // namespace hbrp::nfc
