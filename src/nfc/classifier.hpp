// The three-layer neuro-fuzzy classifier (paper Fig. 3), floating-point form.
//
// Layer 1 (membership): per projected coefficient k and class l in {N, V, L},
// a Gaussian MF yields grade mu_{k,l}(u_k).
// Layer 2 (fuzzification): per-class product f_l = prod_k mu_{k,l} —
// computed here as a log-domain sum, which is exact and underflow-free.
// Layer 3 (defuzzification): with M1/M2 the largest/second fuzzy values and
// S their sum, the beat is assigned to argmax's class if
// (M1 - M2) >= alpha * S, else marked Unknown. V, L and Unknown all count
// as pathological downstream.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "ecg/types.hpp"
#include "nfc/membership.hpp"

namespace hbrp::nfc {

/// Fuzzy values for the three classes, normalized so the maximum is 1
/// (the defuzzification rule is scale-invariant, see defuzzify()).
using FuzzyValues = std::array<double, ecg::kNumClasses>;

/// Defuzzification rule shared by the float and integer classifiers:
/// argmax class if (M1 - M2) >= alpha * sum, else Unknown.
/// alpha in [0, 1]; larger alpha demands more separation (higher confidence).
ecg::BeatClass defuzzify(const FuzzyValues& fuzzy, double alpha);

class NeuroFuzzyClassifier {
 public:
  /// Classifier over `coefficients` inputs with unit MFs (train before use).
  explicit NeuroFuzzyClassifier(std::size_t coefficients);

  std::size_t coefficients() const { return coefficients_; }

  GaussianMF& mf(std::size_t k, std::size_t cls);
  const GaussianMF& mf(std::size_t k, std::size_t cls) const;

  /// Log-domain fuzzy values: log f_l = sum_k log mu_{k,l}(u_k).
  std::array<double, ecg::kNumClasses> log_fuzzy(
      std::span<const double> u) const;

  /// Fuzzy values normalized to max 1 (safe exponentiation of log_fuzzy).
  FuzzyValues fuzzy(std::span<const double> u) const;

  /// Full forward pass + defuzzification.
  ecg::BeatClass classify(std::span<const double> u, double alpha) const;

  /// Batch forward pass: `u` holds `count` beats of coefficients() values
  /// each, row-major (e.g. core::ProjectedDataset::u.flat()); one decision
  /// per beat is written to `out`. Equivalent to classify() per row, with
  /// no heap allocation (the per-beat state is two stack arrays).
  void classify_batch(std::span<const double> u, std::size_t count,
                      double alpha, std::span<ecg::BeatClass> out) const;

  /// Flattens parameters for the optimizer: all centers first, then all
  /// log-sigmas (log parameterization keeps sigma positive under SCG).
  std::vector<double> to_params() const;
  void from_params(std::span<const double> params);
  std::size_t param_count() const { return 2 * mfs_.size(); }

 private:
  std::size_t coefficients_ = 0;
  // mfs_[k * kNumClasses + cls]
  std::vector<GaussianMF> mfs_;
};

}  // namespace hbrp::nfc
