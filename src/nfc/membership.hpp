// Gaussian membership functions — the train-time fuzzy primitives.
#pragma once

#include <cmath>

namespace hbrp::nfc {

/// Gaussian membership function mu(x) = exp(-(x - c)^2 / (2 sigma^2)).
/// The training phase works in the log domain, where the product
/// fuzzification becomes a sum and never underflows.
struct GaussianMF {
  double center = 0.0;
  double sigma = 1.0;

  double grade(double x) const { return std::exp(log_grade(x)); }

  double log_grade(double x) const {
    const double z = (x - center) / sigma;
    return -0.5 * z * z;
  }

  bool operator==(const GaussianMF&) const = default;
};

}  // namespace hbrp::nfc
