// Gaussian membership functions — the train-time fuzzy primitives.
#pragma once

#include <cmath>

namespace hbrp::nfc {

/// Gaussian membership function mu(x) = exp(-(x - c)^2 / (2 sigma^2)).
/// The training phase works in the log domain, where the product
/// fuzzification becomes a sum and never underflows.
struct GaussianMF {
  double center = 0.0;
  double sigma = 1.0;

  double grade(double x) const { return std::exp(log_grade(x)); }

  // Written as (d*d) * (-0.5/sigma^2) — the same operation sequence as the
  // SoA batch kernel with its precomputed -1/(2 sigma^2) factor
  // (kernels::log_fuzzy_batch) — so the single-beat and batch paths stay
  // bit-identical.
  double log_grade(double x) const {
    const double d = x - center;
    return (d * d) * (-0.5 / (sigma * sigma));
  }

  bool operator==(const GaussianMF&) const = default;
};

}  // namespace hbrp::nfc
