// Mini WFDB record tool: generate synthetic MIT-BIH-format records and
// inspect existing ones. Demonstrates that the library's ingestion path is
// the genuine on-disk PhysioBank format — point `info` at any supported
// WFDB record (.hea + .dat + .atr in format 212 or 16).
//
// Usage:
//   wfdb_tools generate <dir> <name> [seconds] [profile] [seed]
//       profile in {normal, pvc, bigeminy, lbbb} (default pvc)
//   wfdb_tools info <dir> <name>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dsp/morphology.hpp"
#include "dsp/peak_detect.hpp"
#include "ecg/mitdb.hpp"
#include "ecg/synth.hpp"
#include "math/check.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  wfdb_tools generate <dir> <name> [seconds] [profile] "
               "[seed]\n"
               "  wfdb_tools info <dir> <name>\n");
  return 2;
}

hbrp::ecg::RecordProfile parse_profile(const std::string& s) {
  using hbrp::ecg::RecordProfile;
  if (s == "normal") return RecordProfile::NormalSinus;
  if (s == "bigeminy") return RecordProfile::PvcBigeminy;
  if (s == "lbbb") return RecordProfile::Lbbb;
  return RecordProfile::PvcOccasional;
}

}  // namespace

int run(int argc, char** argv) {
  using namespace hbrp;
  if (argc < 4) return usage();
  const std::string command = argv[1];
  const std::string dir = argv[2];
  const std::string name = argv[3];

  if (command == "generate") {
    ecg::SynthConfig cfg;
    cfg.duration_s = argc > 4 ? std::atof(argv[4]) : 60.0;
    cfg.profile = parse_profile(argc > 5 ? argv[5] : "pvc");
    cfg.seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 1;
    cfg.num_leads = 2;  // format 212, like the Arrhythmia DB itself
    ecg::Record rec = ecg::generate_record(cfg);
    rec.name = name;
    ecg::mitdb::write_record(rec, dir);
    std::printf("wrote %s/%s.{hea,dat,atr}: %zu leads, %zu samples, "
                "%zu annotated beats\n",
                dir.c_str(), name.c_str(), rec.leads.size(),
                rec.duration_samples(), rec.beats.size());
    return 0;
  }

  if (command == "info") {
    const ecg::Record rec = ecg::mitdb::read_record(dir, name);
    std::printf("record %s: %zu leads, %d Hz, %zu samples (%.1f s)\n",
                rec.name.c_str(), rec.leads.size(), rec.fs_hz,
                rec.duration_samples(), rec.duration_s());
    std::size_t n = 0, v = 0, l = 0;
    for (const auto& b : rec.beats) {
      n += b.cls == ecg::BeatClass::N;
      v += b.cls == ecg::BeatClass::V;
      l += b.cls == ecg::BeatClass::L;
    }
    std::printf("annotations: %zu beats (N %zu, V %zu, L %zu)\n",
                rec.beats.size(), n, v, l);

    // Run the acquisition chain and report detector quality against the
    // stored annotations.
    const auto conditioned = dsp::condition_ecg(rec.leads[0]);
    const auto peaks = dsp::detect_r_peaks(conditioned);
    std::vector<std::size_t> ref;
    for (const auto& b : rec.beats) ref.push_back(b.sample);
    const auto stats = dsp::match_peaks(peaks, ref, 54);
    std::printf("peak detector: %zu detections, sensitivity %.3f, "
                "precision %.3f\n",
                peaks.size(), stats.sensitivity(),
                stats.positive_predictivity());
    return 0;
  }
  return usage();
}

int main(int argc, char** argv) {
  // Malformed or truncated records are an expected input class, not a
  // programming error: report and exit instead of aborting.
  try {
    return run(argc, argv);
  } catch (const hbrp::Error& e) {
    std::fprintf(stderr, "wfdb_tools: %s\n", e.what());
    return 1;
  }
}
