// Adversarial ward demo: the scripted chaos suite replayed end to end.
//
// Compiles the standard scenario suite (AFib-like RR chaos, sustained VT,
// pacemaker spikes, artefact storms, electrode drops, clock skew, a
// mid-record sample-rate mismatch, plus a clean-ward control), then
// replays every scenario three ways:
//
//   direct     straight into a FleetEngine session (the reference);
//   stream     SensorNodeClient -> ChaosProxy -> GatewayServer with
//              lossless chaos (97-byte fragmentation + latency jitter) —
//              the verdict stream must stay bit-identical to direct;
//   selective  the same wire path under lossy chaos (seeded connection
//              kills + frame bit-flips): pathological uploads must all
//              survive via retransmission + verdict dedup.
//
// The per-scenario table reports AAMI-level NDR/ARR, miss/false rates,
// RR irregularity, bytes on the wire per policy, and the chaos the link
// actually absorbed. This is the human-readable twin of bench_scenarios
// (whose JSON feeds the CI robustness gate).
//
// Usage: adversarial_ward [seconds] [seed] [--seed=N]
// (default 30 s, seed 9000; --seed overrides the positional seed)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "scenario/chaos.hpp"
#include "scenario/episodes.hpp"
#include "scenario/runner.hpp"

int main(int argc, char** argv) {
  using namespace hbrp;
  // Positional [seconds] [seed] for muscle memory; --seed=N wins over the
  // positional seed so scripts can pin it without counting arguments.
  double seconds = 30.0;
  std::uint64_t seed_base = 9000;
  bool seed_flag = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed_base = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
      seed_flag = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr,
                   "unknown flag '%s'\n"
                   "usage: adversarial_ward [seconds] [seed] [--seed=N]\n",
                   argv[i]);
      return 1;
    } else if (positional == 0) {
      seconds = std::atof(argv[i]);
      ++positional;
    } else {
      if (!seed_flag)
        seed_base = static_cast<std::uint64_t>(std::atoll(argv[i]));
      ++positional;
    }
  }
  if (seconds < 30.0) {
    std::fprintf(stderr, "need at least 30 s per scenario\n");
    return 1;
  }

  std::printf("Training classifier...\n");
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 180.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 71;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 100;
  dcfg.seed = 72;
  const auto ts2 = ecg::build_dataset({2500, 220, 280}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 8;
  tcfg.ga.generations = 6;
  tcfg.seed = 73;
  const core::TwoStepTrainer trainer(ts1, ts2, tcfg);
  const auto classifier = trainer.run().quantize();

  scenario::ChaosConfig lossless;
  lossless.seed = 5;
  lossless.max_burst = 97;
  lossless.jitter_probability = 0.3;
  lossless.jitter_max_ms = 2;

  scenario::ChaosConfig lossy;
  lossy.seed = 17;
  lossy.kill_probability = 0.5;
  lossy.kill_after_min_bytes = 2048;
  lossy.kill_after_max_bytes = 16384;
  lossy.bit_flip_rate = 5e-5;

  std::printf("\n%-18s %5s %4s %6s %6s %6s %6s %7s %9s %9s %5s %5s %3s\n",
              "scenario", "beats", "obs", "NDR", "ARR", "miss", "false",
              "SDNN", "B(stream)", "B(select)", "kill", "flip", "id");
  bool all_ok = true;
  for (const auto& spec : scenario::standard_scenarios(seconds, seed_base)) {
    const auto stream = scenario::build_scenario(spec);
    const auto direct = scenario::run_direct(classifier, stream);
    const auto score = scenario::score_verdicts(stream, direct);

    const auto wire_stream = scenario::run_wire(
        classifier, stream, net::TxPolicy::StreamEverything, &lossless);
    const bool identical =
        wire_stream.completed && wire_stream.verdicts == direct;

    const auto wire_sel = scenario::run_wire(
        classifier, stream, net::TxPolicy::Selective, &lossy, 1, 1,
        /*drain_budget_ms=*/60000);
    const bool sel_ok =
        wire_sel.completed &&
        wire_sel.tx.verdicts_rx == wire_sel.tx.beats_uploaded;

    std::printf("%-18s %5zu %4zu %6.3f %6.3f %6.3f %6.3f %7.1f %9llu "
                "%9llu %5llu %5llu %3s\n",
                spec.name.c_str(), score.truth_beats, score.obscured,
                score.ndr, score.arr, score.miss_rate, score.false_rate,
                stream.rr.sdnn_ms,
                static_cast<unsigned long long>(wire_stream.tx.bytes_tx),
                static_cast<unsigned long long>(wire_sel.tx.bytes_tx),
                static_cast<unsigned long long>(wire_sel.chaos_kills),
                static_cast<unsigned long long>(wire_sel.chaos_bit_flips),
                identical && sel_ok ? "ok" : "XX");
    if (!identical) {
      std::fprintf(stderr,
                   "%s: wire stream diverged from direct ingest!\n",
                   spec.name.c_str());
      all_ok = false;
    }
    if (!sel_ok) {
      std::fprintf(stderr,
                   "%s: selective path lost or duplicated uploads "
                   "(uploaded %llu, verdicts %llu)\n",
                   spec.name.c_str(),
                   static_cast<unsigned long long>(
                       wire_sel.tx.beats_uploaded),
                   static_cast<unsigned long long>(
                       wire_sel.tx.verdicts_rx));
      all_ok = false;
    }
  }
  if (!all_ok) return 1;
  std::printf("\nevery wire path matched direct ingest through the "
              "chaos — the ward survives its adversary.\n");
  return 0;
}
