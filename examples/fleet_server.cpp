// Fleet collector demo: K simulated WBSN nodes streaming concurrently.
//
// Replays K synthetic MIT-BIH-style records (different "patients" with
// different rhythm profiles, one with an injected flaky electrode) as
// concurrent sessions of a service::FleetEngine — the host-side aggregation
// path of the paper's deployment story. Samples arrive interleaved in
// small chunks, exactly like radio packets from a ward full of nodes; the
// engine shards the sessions over a worker pool, batches beat windows
// across sessions for classification, and delivers per-session results in
// order. At the end the per-session summary table and the fleet telemetry
// JSON snapshot are printed.
//
// Usage: fleet_server [nodes] [seconds] [threads]   (default 8 nodes, 30 s,
//                                                    hardware threads)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <span>
#include <vector>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "service/fleet.hpp"
#include "testing/fault_inject.hpp"

namespace {

const char* profile_name(hbrp::ecg::RecordProfile p) {
  using hbrp::ecg::RecordProfile;
  switch (p) {
    case RecordProfile::NormalSinus: return "normal sinus";
    case RecordProfile::PvcOccasional: return "occasional PVC";
    case RecordProfile::PvcBigeminy: return "PVC bigeminy";
    case RecordProfile::Lbbb: return "LBBB";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbrp;
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 30.0;
  const std::size_t threads =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 0;

  std::printf("Training classifier...\n");
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 180.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 71;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 100;
  dcfg.seed = 72;
  const auto ts2 = ecg::build_dataset({2500, 220, 280}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 8;
  tcfg.ga.generations = 6;
  tcfg.seed = 73;
  const core::TwoStepTrainer trainer(ts1, ts2, tcfg);
  const auto classifier = trainer.run().quantize();

  // --- generate the ward: one record per node, node 0 gets a flaky lead --
  const ecg::RecordProfile profiles[] = {
      ecg::RecordProfile::NormalSinus, ecg::RecordProfile::PvcOccasional,
      ecg::RecordProfile::PvcBigeminy, ecg::RecordProfile::Lbbb};
  std::vector<std::vector<double>> streams(nodes);
  std::vector<ecg::RecordProfile> node_profile(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    ecg::SynthConfig scfg;
    scfg.profile = profiles[i % std::size(profiles)];
    scfg.duration_s = seconds;
    scfg.num_leads = 1;
    scfg.seed = 5000 + i;
    node_profile[i] = scfg.profile;
    const auto rec = ecg::generate_record(scfg);
    const auto& lead = rec.leads[0];
    if (i == 0) {
      // Node 0's electrode detaches briefly and its driver emits NaN: the
      // session's SQI gating and telemetry must absorb it.
      testing::FaultInjectorConfig fcfg;
      fcfg.seed = 7;
      fcfg.events = {
          {testing::FaultKind::LeadOff, lead.size() / 3,
           static_cast<std::size_t>(4 * rec.fs_hz), 0.0, 0.0},
          {testing::FaultKind::NonFinite, 2 * lead.size() / 3,
           static_cast<std::size_t>(rec.fs_hz), 0.0, 0.25},
      };
      testing::FaultInjector injector(fcfg);
      for (const auto x : lead)
        for (const double y : injector.feed(x)) streams[i].push_back(y);
    } else {
      streams[i].assign(lead.begin(), lead.end());
    }
  }

  // --- the fleet engine -------------------------------------------------
  service::FleetConfig fcfg;
  fcfg.threads = threads;
  fcfg.max_sessions = nodes;
  service::FleetEngine engine(classifier, fcfg);
  std::printf("\nFleet engine: %zu sessions, %zu executor threads, "
              "%zu shards\n",
              nodes, engine.executor().threads(), engine.shard_count());

  std::vector<std::size_t> beats(nodes, 0), pathological(nodes, 0);
  std::vector<service::SessionId> ids;
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto id =
        engine.open_session([&, i](const service::SessionResult& r) {
          ++beats[i];
          pathological[i] += ecg::is_pathological(r.beat.predicted);
        });
    if (!id) {
      std::fprintf(stderr, "session %zu refused by admission control\n", i);
      return 1;
    }
    ids.push_back(*id);
  }
  // One node beyond capacity: admission control refuses it.
  if (engine.open_session({}).has_value()) {
    std::fprintf(stderr, "admission control failed to cap the fleet\n");
    return 1;
  }
  std::printf("admission control: node %zu of %zu refused (fleet full)\n",
              nodes + 1, nodes);

  // --- interleaved replay: 512-sample radio packets, round-robin --------
  constexpr std::size_t kPacket = 512;
  std::size_t offset = 0;
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t i = 0; i < nodes; ++i) {
      if (offset >= streams[i].size()) continue;
      any = true;
      const std::size_t n = std::min(kPacket, streams[i].size() - offset);
      std::span<const double> packet(streams[i].data() + offset, n);
      // Block policy: retry until the bounded queue takes the packet.
      while (true) {
        const auto res = engine.offer(ids[i], packet);
        if (res.deferred == 0) break;
        packet = packet.last(res.deferred);
        engine.pump();
      }
    }
    offset += kPacket;
    engine.pump();
  }
  engine.drain();

  std::printf("\n%-4s %-16s %7s %7s %8s %9s %10s %10s\n", "node", "profile",
              "beats", "path%", "suspect", "degraded", "p50 (us)",
              "p99 (us)");
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto* t = engine.session_telemetry(ids[i]);
    if (t == nullptr) continue;
    std::printf("%-4zu %-16s %7zu %6.1f%% %8llu %9llu %10.0f %10.0f\n", i,
                profile_name(node_profile[i]), beats[i],
                100.0 * t->pathological_rate(),
                static_cast<unsigned long long>(t->suspect_beats.load()),
                static_cast<unsigned long long>(t->sqi_degradations.load()),
                t->latency.quantile_us(0.50), t->latency.quantile_us(0.99));
  }

  std::printf("\nFleet telemetry snapshot:\n%s",
              engine.telemetry_json().c_str());

  for (const service::SessionId id : ids) engine.close_session(id);
  return 0;
}
