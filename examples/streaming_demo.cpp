// Firmware-style streaming demo: one ADC sample in, classified beats out.
//
// Shows the bounded-memory path a WBSN firmware would take — the
// StreamingBeatMonitor wraps the streaming conditioner, chunked wavelet
// peak detection and the integer classifier — and prints the beats as they
// are finalized, with the monitor's memory/latency budget up front.
//
// Usage: streaming_demo [seconds] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/streaming.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"

int main(int argc, char** argv) {
  using namespace hbrp;
  const double seconds = argc > 1 ? std::atof(argv[1]) : 30.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;

  std::printf("Training classifier (reduced GA)...\n");
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 180.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 91;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 100;
  dcfg.seed = 92;
  const auto ts2 = ecg::build_dataset({3000, 270, 330}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 10;
  tcfg.ga.generations = 8;
  tcfg.seed = 93;
  const core::TwoStepTrainer trainer(ts1, ts2, tcfg);
  core::StreamingBeatMonitor monitor(trainer.run().quantize());

  std::printf("monitor: %zu samples of state (%.1f KB), latency <= %.1f s\n\n",
              monitor.memory_samples(),
              static_cast<double>(monitor.memory_samples() *
                                  sizeof(dsp::Sample)) /
                  1024.0,
              static_cast<double>(monitor.latency()) / 360.0);

  ecg::SynthConfig scfg;
  scfg.profile = ecg::RecordProfile::PvcBigeminy;
  scfg.duration_s = seconds;
  scfg.num_leads = 1;
  scfg.seed = seed;
  const auto rec = ecg::generate_record(scfg);

  std::printf("streaming %.0f s of ECG, one sample at a time...\n", seconds);
  std::size_t flagged = 0, total = 0;
  auto report = [&](const core::MonitorBeat& b) {
    ++total;
    if (ecg::is_pathological(b.predicted)) ++flagged;
    std::printf("  t=%7.2fs  beat #%3zu  -> %s%s\n",
                static_cast<double>(b.r_peak) / 360.0, total,
                to_string(b.predicted),
                ecg::is_pathological(b.predicted)
                    ? "  [detailed analysis triggered]"
                    : "");
  };
  for (const auto x : rec.leads[0])
    for (const auto& b : monitor.push(x)) report(b);
  for (const auto& b : monitor.flush()) report(b);

  std::printf("\n%zu beats, %zu flagged (%.1f%%); record had %zu annotated "
              "beats\n",
              total, flagged,
              total ? 100.0 * static_cast<double>(flagged) /
                          static_cast<double>(total)
                    : 0.0,
              rec.beats.size());
  return 0;
}
