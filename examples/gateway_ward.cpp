// Gateway ward demo: a net::GatewayServer and N sensor-node clients
// talking the WBSN wire protocol over loopback TCP.
//
// The end-to-end deployment story of the paper: every node samples its own
// synthetic patient, half the ward runs the selective-transmission policy
// (classify on the node, upload only pathological/Unknown windows), the
// other half streams every sample to the gateway for central
// classification. Node 0 additionally suffers an injected flaky electrode
// (lead-off plus NaN bursts from the driver) to show the fault path end to
// end: sanitization on the node, SQI gating in the pipeline,
// suspect-signal escalation records on the wire.
//
// At the end a per-node table compares bytes on the wire and the implied
// radio energy (platform::PowerModel) against the stream-everything
// baseline for the same samples, followed by the gateway's stats and the
// fleet telemetry snapshot.
//
// Usage: gateway_ward [nodes] [seconds] [reactors]  (default 8 nodes, 30 s,
//                                                    hardware reactors)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <span>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "net/client.hpp"
#include "net/gateway.hpp"
#include "platform/energy.hpp"
#include "testing/fault_inject.hpp"

namespace {

const char* profile_name(hbrp::ecg::RecordProfile p) {
  using hbrp::ecg::RecordProfile;
  switch (p) {
    case RecordProfile::NormalSinus: return "normal sinus";
    case RecordProfile::PvcOccasional: return "occasional PVC";
    case RecordProfile::PvcBigeminy: return "PVC bigeminy";
    case RecordProfile::Lbbb: return "LBBB";
  }
  return "?";
}

struct NodeReport {
  hbrp::net::TxPolicy policy{};
  hbrp::net::LinkState final_state{};
  hbrp::net::TxStats stats;
  std::uint64_t verdicts = 0;
  std::uint64_t pathological = 0;
  std::size_t local_records = 0;
};

/// Bytes a StreamEverything link would have spent on the same samples:
/// one HELLO plus dense SAMPLE_CHUNK frames (heartbeats excluded — an
/// active link never idles long enough to send one).
std::uint64_t stream_baseline_bytes(std::uint64_t samples,
                                    std::size_t chunk_samples) {
  const std::uint64_t chunks =
      (samples + chunk_samples - 1) / std::max<std::size_t>(chunk_samples, 1);
  return (hbrp::net::kHeaderBytes + 11) +
         chunks * hbrp::net::kHeaderBytes + samples * 4;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbrp;
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 30.0;
  const std::size_t reactors =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 0;

  std::printf("Training classifier...\n");
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 180.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 71;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 100;
  dcfg.seed = 72;
  const auto ts2 = ecg::build_dataset({2500, 220, 280}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 8;
  tcfg.ga.generations = 6;
  tcfg.seed = 73;
  const core::TwoStepTrainer trainer(ts1, ts2, tcfg);
  const auto classifier = trainer.run().quantize();

  // --- the ward: one record per node, node 0 gets a flaky electrode ------
  const ecg::RecordProfile profiles[] = {
      ecg::RecordProfile::NormalSinus, ecg::RecordProfile::PvcOccasional,
      ecg::RecordProfile::PvcBigeminy, ecg::RecordProfile::Lbbb};
  std::vector<std::vector<double>> streams(nodes);
  std::vector<ecg::RecordProfile> node_profile(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    ecg::SynthConfig scfg;
    scfg.profile = profiles[i % std::size(profiles)];
    scfg.duration_s = seconds;
    scfg.num_leads = 1;
    scfg.seed = 5000 + i;
    node_profile[i] = scfg.profile;
    const auto rec = ecg::generate_record(scfg);
    const auto& lead = rec.leads[0];
    if (i == 0) {
      testing::FaultInjectorConfig fcfg;
      fcfg.seed = 7;
      fcfg.events = {
          {testing::FaultKind::LeadOff, lead.size() / 3,
           static_cast<std::size_t>(4 * rec.fs_hz), 0.0, 0.0},
          {testing::FaultKind::NonFinite, 2 * lead.size() / 3,
           static_cast<std::size_t>(rec.fs_hz), 0.0, 0.25},
      };
      testing::FaultInjector injector(fcfg);
      for (const auto x : lead)
        for (const double y : injector.feed(x)) streams[i].push_back(y);
    } else {
      streams[i].assign(lead.begin(), lead.end());
    }
  }

  // --- gateway on an ephemeral loopback port -----------------------------
  net::GatewayConfig gcfg;
  gcfg.reactors = reactors;
  gcfg.fleet.max_sessions = nodes;
  // Ward liveness: a node silent for 5 s (no samples, no heartbeat — the
  // client default heartbeats at 1 s) is presumed dead and evicted, so a
  // crashed sensor can never pin a fleet session forever.
  gcfg.idle_timeout_ms = 5000;
  net::GatewayServer gateway(classifier, gcfg);
  std::printf("\nGateway on 127.0.0.1:%u — %zu reactor threads, one fleet "
              "shard each\n",
              gateway.port(), gateway.reactor_count());
  std::thread serve_thread([&gateway] { gateway.serve(); });

  // --- one client thread per node, alternating transmission policies -----
  std::vector<NodeReport> reports(nodes);
  std::vector<std::thread> node_threads;
  node_threads.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    node_threads.emplace_back([&, i] {
      net::NodeConfig ncfg;
      ncfg.port = gateway.port();
      ncfg.node_id = static_cast<std::uint32_t>(i);
      ncfg.policy = (i % 2 == 0) ? net::TxPolicy::Selective
                                 : net::TxPolicy::StreamEverything;
      net::SensorNodeClient client(classifier, ncfg);
      NodeReport& rep = reports[i];
      rep.policy = ncfg.policy;
      client.set_verdict_sink(
          [&rep](std::uint64_t, const net::BeatVerdictMsg& v) {
            ++rep.verdicts;
            rep.pathological += ecg::is_pathological(
                static_cast<ecg::BeatClass>(v.beat_class));
          });

      constexpr std::size_t kPacket = 512;  // one radio packet per push
      const std::vector<double>& lead = streams[i];
      for (std::size_t off = 0; off < lead.size(); off += kPacket) {
        const std::size_t n = std::min(kPacket, lead.size() - off);
        client.push(std::span<const double>(lead.data() + off, n));
        client.poll_once(0);
      }
      client.close(/*deadline_ms=*/30000);

      rep.final_state = client.state();
      rep.stats = client.stats();
      rep.local_records = client.local_log().size();
    });
  }
  for (auto& t : node_threads) t.join();
  gateway.stop();
  serve_thread.join();

  // --- per-node radio accounting ----------------------------------------
  const platform::PowerModel power;
  std::printf("\n%-4s %-14s %-10s %6s %6s %7s %8s %9s %10s %7s\n", "node",
              "profile", "policy", "local", "uploads", "verdicts", "path",
              "bytes_tx", "radio (mJ)", "saved");
  std::uint64_t selective_bytes = 0, selective_baseline = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeReport& r = reports[i];
    const bool selective = r.policy == net::TxPolicy::Selective;
    const std::uint64_t baseline =
        stream_baseline_bytes(r.stats.samples_in, 512);
    if (selective) {
      selective_bytes += r.stats.bytes_tx;
      selective_baseline += baseline;
    }
    char saved[16] = "    --";
    if (selective && baseline > 0)
      std::snprintf(saved, sizeof saved, "%5.1f%%",
                    100.0 * (1.0 - static_cast<double>(r.stats.bytes_tx) /
                                       static_cast<double>(baseline)));
    std::printf("%-4zu %-14s %-10s %6zu %6llu %7llu %8llu %9llu %10.3f %7s\n",
                i, profile_name(node_profile[i]),
                selective ? "selective" : "stream", r.local_records,
                static_cast<unsigned long long>(r.stats.beats_uploaded),
                static_cast<unsigned long long>(r.verdicts),
                static_cast<unsigned long long>(r.pathological),
                static_cast<unsigned long long>(r.stats.bytes_tx),
                1e3 * net::radio_energy_j(r.stats, power), saved);
    if (r.final_state != net::LinkState::Closed) {
      std::fprintf(stderr, "node %zu did not close cleanly (state %s)\n", i,
                   net::to_string(r.final_state));
      return 1;
    }
    if (r.stats.verdict_seq_gaps != 0) {
      std::fprintf(stderr, "node %zu saw a verdict sequence gap\n", i);
      return 1;
    }
  }
  if (selective_baseline > 0) {
    const double saved =
        1.0 - static_cast<double>(selective_bytes) /
                  static_cast<double>(selective_baseline);
    std::printf("\nselective policy: %llu bytes on the wire vs %llu "
                "streaming the same samples — %.1f%% of the radio budget "
                "saved (%.3f mJ)\n",
                static_cast<unsigned long long>(selective_bytes),
                static_cast<unsigned long long>(selective_baseline),
                100.0 * saved,
                1e3 * static_cast<double>(selective_baseline -
                                          selective_bytes) *
                    power.radio_j_per_byte);
  }
  const NodeReport& faulty = reports[0];
  std::printf("node 0's flaky electrode: %llu non-finite samples "
              "sanitized on the node\n",
              static_cast<unsigned long long>(
                  faulty.stats.sanitized_nonfinite));

  std::printf("\nGateway stats:\n%s\n", gateway.stats().json().c_str());
  std::printf("\nFleet telemetry snapshot:\n%s",
              gateway.engine().telemetry_json().c_str());
  return 0;
}
