// Quickstart: train the RP neuro-fuzzy classifier on synthetic MIT-BIH-like
// data and evaluate it, end to end, in under a minute.
//
//   1. build the three dataset splits (scaled down from Table I for speed);
//   2. run the two-step training (SCG inner loop, GA outer loop);
//   3. evaluate NDR/ARR on the test split, float and embedded-integer paths;
//   4. quantize to the deployable bundle and print its memory footprint.
//
// Usage: quickstart [--full]   (--full uses the paper-scale GA: 20 x 30)
#include <cstring>
#include <iostream>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"

int main(int argc, char** argv) {
  using namespace hbrp;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  std::cout << "== hbrp quickstart ==\n";
  std::cout << "Building datasets (synthetic MIT-BIH substitute)...\n";
  ecg::DatasetBuilderConfig ds_cfg;
  ds_cfg.record_duration_s = 180.0;
  ds_cfg.seed = 11;
  ds_cfg.max_per_record_per_class = 20;  // many patients in the small split
  const ecg::BeatDataset ts1 = ecg::build_dataset({150, 150, 150}, ds_cfg);
  ds_cfg.max_per_record_per_class = 100;
  ds_cfg.seed = 22;
  const ecg::BeatDataset ts2 = ecg::build_dataset({2000, 180, 220}, ds_cfg);
  ds_cfg.seed = 33;
  const ecg::BeatDataset test = ecg::build_dataset({5000, 450, 550}, ds_cfg);

  core::TwoStepConfig cfg;
  cfg.coefficients = 8;
  cfg.downsample = 4;
  cfg.min_arr = 0.97;
  cfg.ga.population = full ? 20 : 6;
  cfg.ga.generations = full ? 30 : 4;
  cfg.seed = 7;

  std::cout << "Two-step training (GA " << cfg.ga.population << " x "
            << cfg.ga.generations << ", SCG inner loop)...\n";
  const core::TwoStepTrainer trainer(ts1, ts2, cfg);
  const core::TrainedClassifier trained = trainer.run();
  std::cout << "  alpha_train = " << trained.alpha_train << "\n";

  const core::ProjectedDataset test_proj =
      core::project_dataset(test, trained.projector);
  const core::ConfusionMatrix float_cm =
      core::evaluate(trained.nfc, test_proj, trained.alpha_train);
  std::cout << "Float classifier  : NDR = " << 100.0 * float_cm.ndr()
            << "%  ARR = " << 100.0 * float_cm.arr() << "%\n";

  const embedded::EmbeddedClassifier bundle = trained.quantize();
  const core::ConfusionMatrix int_cm = core::evaluate_embedded(bundle, test);
  std::cout << "Embedded (integer): NDR = " << 100.0 * int_cm.ndr()
            << "%  ARR = " << 100.0 * int_cm.arr() << "%\n";
  std::cout << "Bundle memory: " << bundle.memory_bytes()
            << " bytes (projection "
            << bundle.projector().packed().memory_bytes() << " + MF tables "
            << bundle.classifier().memory_bytes() << ")\n";
  return 0;
}
