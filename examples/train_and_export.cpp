// Train the full two-step framework and export the deployable firmware
// artefact: a self-contained C header with the 2-bit packed projection
// matrix, quantized MF tables and the Q16 decision threshold.
//
// Usage: train_and_export [output.h] [--full]
//   output.h   defaults to hbrp_classifier.h in the working directory
//   --full     paper-scale GA (20 x 30) and Table-I-sized splits
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"

int main(int argc, char** argv) {
  using namespace hbrp;
  const char* out_path = "hbrp_classifier.h";
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0)
      full = true;
    else
      out_path = argv[i];
  }

  ecg::BeatDataset ts1, ts2;
  if (full) {
    std::cout << "Loading paper-scale splits (cached)...\n";
    const auto splits = ecg::load_paper_splits(0.25);
    ts1 = splits.training1;
    ts2 = splits.training2;
  } else {
    std::cout << "Building reduced training splits...\n";
    ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 180.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 77;
    ts1 = ecg::build_dataset({150, 150, 150}, cfg);
    cfg.max_per_record_per_class = 100;
    cfg.seed = 78;
    ts2 = ecg::build_dataset({2500, 220, 280}, cfg);
  }

  core::TwoStepConfig cfg;
  cfg.coefficients = 8;
  cfg.ga.population = full ? 20 : 8;
  cfg.ga.generations = full ? 30 : 6;
  cfg.seed = 2013;
  std::cout << "Running two-step training (GA " << cfg.ga.population << " x "
            << cfg.ga.generations << ")...\n";
  const core::TwoStepTrainer trainer(ts1, ts2, cfg);
  const auto trained = trainer.run();
  std::cout << "GA fitness history:";
  for (const double f : trainer.last_history()) std::cout << ' ' << f;
  std::cout << "\nalpha_train = " << trained.alpha_train << "\n";

  const auto bundle = trained.quantize();
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  bundle.export_c_header(out, "HBRP");
  std::cout << "Wrote " << out_path << " (" << bundle.memory_bytes()
            << " bytes of parameter tables: projection "
            << bundle.projector().packed().memory_bytes() << " + MFs "
            << bundle.classifier().memory_bytes() << ")\n";
  return 0;
}
