// Simulated ambulatory (Holter) monitoring session.
//
// Streams several multi-lead records — different synthetic "patients" with
// different rhythm profiles — through the complete WBSN pipeline (system
// (3) of the paper's Fig. 6), reporting per-record classification, gated
// delineation activity, and the modelled duty cycle / node power on the
// IcyHeart platform. A final segment replays one patient through the
// fault-tolerant streaming monitor with injected acquisition faults
// (lead-off, saturation, NaN bursts) to show the signal-quality gating and
// recovery behaviour a real ambulatory session depends on.
//
// Usage: holter_monitor [minutes-per-record] [detector] [--seed=N]
//   minutes-per-record: default 5
//   detector: "wavelet" (default) or "adaptive" — selects the R-peak
//             detector the streaming monitor runs (dsp::PeakDetectorKind).
//   --seed=N: base seed for the synthetic patient records (default 1000;
//             patient i streams from N+i, the fault replay from N+1000).
//             The trained model's seeds are fixed — only the simulated
//             patients change.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "core/streaming.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "platform/energy.hpp"
#include "testing/fault_inject.hpp"

namespace {

const char* profile_name(hbrp::ecg::RecordProfile p) {
  using hbrp::ecg::RecordProfile;
  switch (p) {
    case RecordProfile::NormalSinus: return "normal sinus";
    case RecordProfile::PvcOccasional: return "occasional PVC";
    case RecordProfile::PvcBigeminy: return "PVC bigeminy";
    case RecordProfile::Lbbb: return "LBBB";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbrp;
  double minutes = 5.0;
  std::uint64_t seed_base = 1000;
  dsp::PeakDetectorKind detector = dsp::PeakDetectorKind::Wavelet;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed_base = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr,
                   "unknown flag '%s'\n"
                   "usage: holter_monitor [minutes] [detector] [--seed=N]\n",
                   argv[i]);
      return 1;
    } else if (positional == 0) {
      minutes = std::atof(argv[i]);
      ++positional;
    } else {
      if (std::strcmp(argv[i], "adaptive") == 0)
        detector = dsp::PeakDetectorKind::AdaptiveThreshold;
      ++positional;
    }
  }
  std::printf("R-peak detector: %s\n",
              detector == dsp::PeakDetectorKind::Wavelet ? "wavelet"
                                                         : "adaptive");

  // Train once (reduced GA keeps the example snappy).
  std::printf("Training classifier...\n");
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 180.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 31;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 100;
  dcfg.seed = 32;
  const auto ts2 = ecg::build_dataset({2500, 220, 280}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 8;
  tcfg.ga.generations = 6;
  tcfg.seed = 33;
  const core::TwoStepTrainer trainer(ts1, ts2, tcfg);
  const auto trained = trainer.run();
  core::PipelineConfig pipe_cfg;
  pipe_cfg.peak.kind = detector;
  const core::RealTimePipeline pipeline(trained.quantize(), pipe_cfg);

  const ecg::RecordProfile profiles[] = {
      ecg::RecordProfile::NormalSinus, ecg::RecordProfile::PvcOccasional,
      ecg::RecordProfile::PvcBigeminy, ecg::RecordProfile::Lbbb};

  const platform::KernelCosts costs(platform::CycleModel{}, 360);
  const platform::IcyHeartSpec soc;
  const platform::PowerModel power;
  const platform::PayloadModel payload;

  std::printf("\n%-16s %7s %9s %11s %8s %11s\n", "patient profile", "beats",
              "flagged", "delineated", "duty", "node power");
  double session_flagged = 0.0, session_beats = 0.0;
  for (std::size_t i = 0; i < std::size(profiles); ++i) {
    ecg::SynthConfig scfg;
    scfg.profile = profiles[i];
    scfg.duration_s = minutes * 60.0;
    scfg.seed = seed_base + i;
    const auto rec = ecg::generate_record(scfg);
    const auto result = pipeline.process(rec);

    platform::ScenarioParams scenario;
    scenario.beat_rate_hz =
        static_cast<double>(result.beats.size()) / rec.duration_s();
    scenario.flagged_fraction = result.flagged_fraction();
    const double duty =
        platform::load_system3(costs, scenario).duty_cycle(soc);
    const auto energy =
        platform::energy_proposed(costs, scenario, soc, power, payload);

    std::size_t delineated = 0;
    for (const auto& b : result.beats) delineated += b.delineated;
    std::printf("%-16s %7zu %8.1f%% %11zu %8.3f %9.0f uW\n",
                profile_name(profiles[i]), result.beats.size(),
                100.0 * result.flagged_fraction(), delineated, duty,
                1e6 * energy.total_w());
    session_flagged += static_cast<double>(result.flagged_count());
    session_beats += static_cast<double>(result.beats.size());
  }
  std::printf("\nsession: %.0f beats, %.1f%% routed to detailed analysis\n",
              session_beats, 100.0 * session_flagged / session_beats);

  // --- fault-tolerance demo: a patient with a flaky electrode ------------
  std::printf("\nFault-injection replay (occasional PVC patient):\n");
  ecg::SynthConfig scfg;
  scfg.profile = ecg::RecordProfile::PvcOccasional;
  scfg.duration_s = minutes * 60.0;
  scfg.num_leads = 1;
  scfg.seed = seed_base + 1000;
  const auto rec = ecg::generate_record(scfg);
  const auto& lead = rec.leads[0];

  const int fs = rec.fs_hz;
  const auto n = lead.size();
  testing::FaultInjectorConfig fcfg;
  fcfg.seed = 99;
  fcfg.events = {
      // 20%: electrode detaches for 8 s.
      {testing::FaultKind::LeadOff, n / 5, static_cast<std::size_t>(8 * fs),
       0.0, 0.0},
      // 50%: front-end saturates for 5 s.
      {testing::FaultKind::Saturation, n / 2,
       static_cast<std::size_t>(5 * fs), 0.0, 0.0},
      // 75%: two seconds of NaN garbage from the driver layer.
      {testing::FaultKind::NonFinite, 3 * n / 4,
       static_cast<std::size_t>(2 * fs), 0.0, 0.25},
  };

  core::MonitorConfig mon_cfg;
  mon_cfg.peak.kind = detector;
  core::StreamingBeatMonitor monitor(trained.quantize(), mon_cfg);
  std::size_t beats_total = 0, beats_suspect = 0;
  testing::FaultInjector injector(fcfg);
  // Beats stream straight into the sink as they finalize — no per-sample
  // result vectors on the monitoring loop.
  const core::BeatSink sink = [&](const core::MonitorBeat& b) {
    ++beats_total;
    beats_suspect += b.quality == dsp::SignalQuality::Suspect;
  };
  // Replay in ADC-DMA-sized blocks through the monitor's block entry point
  // (the fault injector still mangles sample-by-sample, like the front end
  // would).
  std::vector<double> block;
  constexpr std::size_t kBlock = 1024;
  for (const auto x : lead) {
    for (const double y : injector.feed(x)) block.push_back(y);
    if (block.size() >= kBlock) {
      monitor.push_block(std::span<const double>(block), sink);
      block.clear();
    }
  }
  monitor.push_block(std::span<const double>(block), sink);
  monitor.flush(sink);
  const auto& stats = monitor.stats();  // cumulative: survives flush()

  std::printf(
      "  %zu beats (%zu escalated to Unknown under suspect signal)\n"
      "  %zu samples suppressed in bad-signal state, %zu degradations, "
      "%zu recoveries\n"
      "  %zu non-finite samples rejected, %zu out-of-range clamped\n",
      beats_total, beats_suspect, stats.bad_signal_samples,
      stats.degradations, stats.recoveries, stats.rejected_nonfinite,
      stats.clamped);
  return 0;
}
