// Fleet soak driver: ramps thousands of loopback SensorNodeClients against
// one multi-reactor net::GatewayServer and holds them all concurrently
// open, with bounded memory and a hard pass/fail verdict at the end.
//
// What it stresses (and the existing tests/benches don't): session *scale*.
// The ward demos run ~10 nodes; this driver defaults to 10,000 — every one
// a real TCP connection with its own fleet session — which exercises the
// gateway's reactor sharding, the epoll readiness path (a poll(2) gateway
// scans every fd per wakeup; epoll must not), admission at max_sessions,
// and the file-descriptor budget (RLIMIT_NOFILE is raised automatically;
// if the hard limit refuses, the node count self-scales down and says so).
//
// Memory stays bounded by construction: all nodes share four synthetic
// leads (no per-node signal buffers), verdict sinks count instead of
// recording, and the classifier's quantized tables are small enough that
// each node's copy is noise. The report includes the process's peak RSS so
// a CI harness can put a ceiling on it.
//
// Pass criteria (exit nonzero on any violation):
//   - every node establishes a session and closes cleanly;
//   - zero verdict sequence gaps and zero dropped frames across the fleet;
//   - peak RSS under rss_cap_mb when a cap is given.
// Reported: per-reactor stats, fleet beat-latency p50/p99 (engine-side,
// enqueue -> sink), verdict totals, peak RSS.
//
// Usage: fleet_soak [nodes] [seconds] [reactors] [rss_cap_mb]
//        defaults: 10000 nodes, 10 s of signal, 2 reactors, no RSS cap
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "net/client.hpp"
#include "net/gateway.hpp"

namespace {

using namespace hbrp;
using Clock = std::chrono::steady_clock;

embedded::EmbeddedClassifier train_quick() {
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 120.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 611;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 80;
  dcfg.seed = 612;
  const auto ts2 = ecg::build_dataset({1200, 120, 150}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 4;
  tcfg.ga.generations = 2;
  tcfg.seed = 61;
  return core::TwoStepTrainer(ts1, ts2, tcfg).run().quantize();
}

/// Raises RLIMIT_NOFILE toward `want`; returns the limit actually in
/// force. The driver needs ~2 fds per node (client socket + gateway side)
/// plus slack for epoll/pipes/listener.
rlim_t raise_fd_limit(rlim_t want) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur >= want) return rl.rlim_cur;
  rlimit raised = rl;
  raised.rlim_cur = want;
  if (raised.rlim_max != RLIM_INFINITY && raised.rlim_max < want)
    raised.rlim_max = want;  // root may raise the hard limit too
  if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) return want;
  // Hard limit held: take everything the soft limit can give.
  raised.rlim_max = rl.rlim_max;
  raised.rlim_cur = rl.rlim_max;
  if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) return raised.rlim_cur;
  return rl.rlim_cur;
}

std::uint64_t peak_rss_mb() {
  rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;  // KB -> MB
}

struct DriverTotals {
  std::uint64_t established = 0;
  std::uint64_t unclean = 0;
  std::uint64_t verdicts = 0;
  std::uint64_t seq_gaps = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_tx = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 10000;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 10.0;
  const std::size_t reactors =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 2;
  const std::uint64_t rss_cap_mb =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 0;

  const rlim_t fds_wanted = static_cast<rlim_t>(2 * nodes + 512);
  const rlim_t fds = raise_fd_limit(fds_wanted);
  if (fds < fds_wanted) {
    const std::size_t fit = (static_cast<std::size_t>(fds) - 512) / 2;
    std::fprintf(stderr,
                 "fd limit %llu cannot hold %zu nodes; scaling down to %zu\n",
                 static_cast<unsigned long long>(fds), nodes, fit);
    nodes = fit;
  }

  std::printf("Training classifier...\n");
  const auto classifier = train_quick();

  // Four shared leads, reused by every node: input memory is O(1) in the
  // node count.
  const ecg::RecordProfile profiles[] = {
      ecg::RecordProfile::NormalSinus, ecg::RecordProfile::PvcOccasional,
      ecg::RecordProfile::PvcBigeminy, ecg::RecordProfile::Lbbb};
  std::vector<std::vector<double>> leads(std::size(profiles));
  for (std::size_t i = 0; i < leads.size(); ++i) {
    ecg::SynthConfig scfg;
    scfg.profile = profiles[i];
    scfg.duration_s = seconds;
    scfg.num_leads = 1;
    scfg.seed = 6100 + i;
    const auto rec = ecg::generate_record(scfg);
    leads[i].assign(rec.leads[0].begin(), rec.leads[0].end());
  }
  const std::size_t lead_len = leads[0].size();

  net::GatewayConfig gcfg;
  gcfg.reactors = reactors;
  gcfg.max_connections = nodes + 64;
  gcfg.fleet.max_sessions = nodes;
  gcfg.listen_backlog = 1024;
  net::GatewayServer gateway(classifier, gcfg);
  std::printf("Gateway on 127.0.0.1:%u — %zu reactors, %zu node target, "
              "fd limit %llu\n",
              gateway.port(), gateway.reactor_count(), nodes,
              static_cast<unsigned long long>(fds));
  std::thread serve_thread([&gateway] { gateway.serve(); });

  // Driver threads multiplex the ward: thread d owns nodes d, d+K, d+2K...
  // and steps them all through ramp -> replay -> close with poll_once(0).
  const std::size_t drivers = std::max<std::size_t>(
      2, std::min<std::size_t>(8, std::thread::hardware_concurrency()));
  std::vector<DriverTotals> totals(drivers);
  const auto t0 = Clock::now();

  std::vector<std::thread> driver_threads;
  driver_threads.reserve(drivers);
  for (std::size_t d = 0; d < drivers; ++d) {
    driver_threads.emplace_back([&, d] {
      DriverTotals& tot = totals[d];
      std::vector<std::unique_ptr<net::SensorNodeClient>> clients;
      std::vector<std::uint64_t> verdicts;
      for (std::size_t i = d; i < nodes; i += drivers)
        verdicts.push_back(0);

      // Ramp: construct and kick each connection; a periodic sweep keeps
      // the already-connected nodes' HELLO handshakes moving so the
      // gateway's accept backlog never piles up behind a silent driver.
      std::size_t slot = 0;
      for (std::size_t i = d; i < nodes; i += drivers, ++slot) {
        net::NodeConfig ncfg;
        ncfg.port = gateway.port();
        ncfg.node_id = static_cast<std::uint32_t>(i);
        ncfg.policy = net::TxPolicy::StreamEverything;
        ncfg.heartbeat_interval_ms = 2000;
        auto client =
            std::make_unique<net::SensorNodeClient>(classifier, ncfg);
        const std::size_t s = slot;
        client->set_verdict_sink(
            [&verdicts, s](std::uint64_t, const net::BeatVerdictMsg&) {
              ++verdicts[s];
            });
        client->poll_once(0);
        clients.push_back(std::move(client));
        if (clients.size() % 256 == 0)
          for (auto& c : clients) c->poll_once(0);
      }

      // Establishment: poll stragglers until the whole cohort is in.
      const auto ramp_deadline = Clock::now() + std::chrono::seconds(60);
      while (Clock::now() < ramp_deadline) {
        bool all = true;
        for (auto& c : clients)
          if (!c->established()) {
            all = false;
            c->poll_once(1);
          }
        if (all) break;
      }
      for (auto& c : clients) tot.established += c->established();

      // Replay: one 512-sample packet per node per round, leads shared by
      // profile rotation.
      constexpr std::size_t kPacket = 512;
      for (std::size_t off = 0; off < lead_len; off += kPacket) {
        slot = 0;
        for (std::size_t i = d; i < nodes; i += drivers, ++slot) {
          const auto& lead = leads[i % leads.size()];
          const std::size_t n = std::min(kPacket, lead.size() - off);
          clients[slot]->push(std::span<const double>(lead.data() + off, n));
          clients[slot]->poll_once(0);
        }
      }

      // Graceful close: finish everyone first so tails overlap, then close
      // with a per-node deadline.
      for (auto& c : clients) {
        c->finish();
        c->poll_once(0);
      }
      for (auto& c : clients) {
        c->close(/*deadline_ms=*/30000);
        tot.unclean += c->state() != net::LinkState::Closed;
        tot.seq_gaps += c->stats().verdict_seq_gaps;
        tot.frames_dropped += c->stats().frames_dropped;
        tot.bytes_tx += c->stats().bytes_tx;
      }
      for (const std::uint64_t v : verdicts) tot.verdicts += v;
    });
  }
  for (std::thread& t : driver_threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  gateway.stop();
  serve_thread.join();
  // Snapshot after the serve loop settles, so the last connection's
  // finalization is in the books; the gateway object is still alive.
  const service::FleetTelemetry& ft = gateway.engine().telemetry();
  const double p50_us = ft.latency.quantile_us(0.50);
  const double p99_us = ft.latency.quantile_us(0.99);
  const std::string reactor_stats = gateway.reactors_json();

  DriverTotals sum;
  for (const DriverTotals& t : totals) {
    sum.established += t.established;
    sum.unclean += t.unclean;
    sum.verdicts += t.verdicts;
    sum.seq_gaps += t.seq_gaps;
    sum.frames_dropped += t.frames_dropped;
    sum.bytes_tx += t.bytes_tx;
  }
  const std::uint64_t rss_mb = peak_rss_mb();

  std::printf("\nsoak: %zu nodes x %.0f s through %zu reactors in %.1f s\n",
              nodes, seconds, reactors, wall_s);
  std::printf("established %llu / %zu, unclean closes %llu\n",
              static_cast<unsigned long long>(sum.established), nodes,
              static_cast<unsigned long long>(sum.unclean));
  std::printf("verdicts %llu, seq gaps %llu, dropped frames %llu, "
              "%.1f MB on the wire\n",
              static_cast<unsigned long long>(sum.verdicts),
              static_cast<unsigned long long>(sum.seq_gaps),
              static_cast<unsigned long long>(sum.frames_dropped),
              static_cast<double>(sum.bytes_tx) / (1024.0 * 1024.0));
  std::printf("beat latency (enqueue->sink): p50 %.0f us, p99 %.0f us\n",
              p50_us, p99_us);
  std::printf("peak RSS %llu MB%s\n",
              static_cast<unsigned long long>(rss_mb),
              rss_cap_mb ? " (capped)" : "");
  std::printf("reactors: %s\n", reactor_stats.c_str());

  if (sum.established != nodes) {
    std::fprintf(stderr, "FAIL: only %llu of %zu nodes established\n",
                 static_cast<unsigned long long>(sum.established), nodes);
    return 2;
  }
  if (sum.unclean != 0 || sum.seq_gaps != 0 || sum.frames_dropped != 0) {
    std::fprintf(stderr, "FAIL: unclean=%llu gaps=%llu drops=%llu\n",
                 static_cast<unsigned long long>(sum.unclean),
                 static_cast<unsigned long long>(sum.seq_gaps),
                 static_cast<unsigned long long>(sum.frames_dropped));
    return 3;
  }
  if (rss_cap_mb != 0 && rss_mb > rss_cap_mb) {
    std::fprintf(stderr, "FAIL: peak RSS %llu MB exceeds the %llu MB cap\n",
                 static_cast<unsigned long long>(rss_mb),
                 static_cast<unsigned long long>(rss_cap_mb));
    return 4;
  }
  std::printf("PASS\n");
  return 0;
}
