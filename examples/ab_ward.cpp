// ab_ward — fleet A/B rollout report: which nodes land on which arm, and
// what each arm's model does to the ward's AAMI metrics.
//
// Trains two small classifiers from independently evolved projection
// matrices (arm A = incumbent, arm B = candidate), assigns a ward of
// sensor nodes to arms with the same seeded lifecycle::AbSplit the
// gateway uses (splitmix64 of node id — sticky, uniform, reseedable),
// then replays the standard adversarial scenario suite through each
// arm's model and prints per-arm NDR/ARR/miss/false plus the candidate's
// deltas — the table a ward operator reads before promote_candidate().
//
//   usage: ab_ward [nodes] [percent_b] [seed]
//          nodes      ward size               (default 8)
//          percent_b  candidate-arm share     (default 50)
//          seed       A/B assignment seed     (default 42)
//
// A scenario where one arm recognizes abnormals (ARR >= 0.5) while the
// other is essentially blind (ARR <= 0.05) earns a "do not promote blind"
// warning. Exit code 1 only when an arm's mean ARR over the whole suite
// is zero — a rollout report for a completely blind model is garbage.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "lifecycle/ab.hpp"
#include "scenario/episodes.hpp"
#include "scenario/runner.hpp"

namespace {

using namespace hbrp;

embedded::EmbeddedClassifier train_arm(std::uint64_t ga_seed) {
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 120.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 191;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 80;
  dcfg.seed = 192;
  const auto ts2 = ecg::build_dataset({1200, 120, 150}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 4;
  tcfg.ga.generations = 2;
  tcfg.seed = ga_seed;
  return core::TwoStepTrainer(ts1, ts2, tcfg).run().quantize();
}

struct ArmAgg {
  double ndr = 0, arr = 0, miss = 0, false_rate = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t nodes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const int percent_b = argc > 2 ? std::atoi(argv[2]) : 50;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  if (nodes == 0 || percent_b < 0 || percent_b > 100) {
    std::fprintf(stderr, "usage: ab_ward [nodes] [percent_b 0..100] [seed]\n");
    return 2;
  }

  std::printf("ab_ward: %llu nodes, %d%% on candidate arm B (seed %llu)\n\n",
              static_cast<unsigned long long>(nodes), percent_b,
              static_cast<unsigned long long>(seed));

  const lifecycle::AbSplit split{seed, percent_b};
  std::printf("node assignment (sticky across reconnects):\n  ");
  std::size_t on_b = 0;
  for (std::uint64_t node = 0; node < nodes; ++node) {
    const std::uint8_t arm = split.arm(node);
    on_b += arm;
    std::printf("n%llu:%c ", static_cast<unsigned long long>(node),
                arm == 0 ? 'A' : 'B');
  }
  std::printf("\n  %zu/%llu on arm B\n\n", on_b,
              static_cast<unsigned long long>(nodes));

  std::printf("training arm A (incumbent, GA seed 19)...\n");
  const auto clf_a = train_arm(19);
  std::printf("training arm B (candidate, GA seed 29)...\n\n");
  const auto clf_b = train_arm(29);
  const embedded::EmbeddedClassifier* clfs[2] = {&clf_a, &clf_b};

  const auto specs = scenario::standard_scenarios(40.0, 9000);
  ArmAgg agg[2];
  bool lopsided = false;
  std::printf("%-22s | %6s %6s | %6s %6s | %7s %7s\n", "scenario", "A_ndr",
              "A_arr", "B_ndr", "B_arr", "dNDR", "dARR");
  for (const auto& spec : specs) {
    const auto stream = scenario::build_scenario(spec);
    scenario::ScenarioScore score[2];
    for (int arm = 0; arm < 2; ++arm) {
      const auto verdicts = scenario::run_direct(*clfs[arm], stream);
      score[arm] = scenario::score_verdicts(stream, verdicts);
      agg[arm].ndr += score[arm].ndr;
      agg[arm].arr += score[arm].arr;
      agg[arm].miss += score[arm].miss_rate;
      agg[arm].false_rate += score[arm].false_rate;
    }
    // One arm recognizing abnormals on a scenario the other is blind to
    // is a rollout red flag, not a reporting nuance.
    const auto blind_vs_seeing = [](double blind, double seeing) {
      return blind <= 0.05 && seeing >= 0.5;
    };
    if (blind_vs_seeing(score[0].arr, score[1].arr) ||
        blind_vs_seeing(score[1].arr, score[0].arr))
      lopsided = true;
    std::printf("%-22s | %6.3f %6.3f | %6.3f %6.3f | %+7.3f %+7.3f\n",
                spec.name.c_str(), score[0].ndr, score[0].arr, score[1].ndr,
                score[1].arr, score[1].ndr - score[0].ndr,
                score[1].arr - score[0].arr);
  }

  const double n = static_cast<double>(specs.size());
  std::printf("\n%-10s %8s %8s %10s %11s\n", "arm", "ndr", "arr",
              "miss_rate", "false_rate");
  const char* names[2] = {"A (live)", "B (cand)"};
  for (int arm = 0; arm < 2; ++arm)
    std::printf("%-10s %8.3f %8.3f %10.3f %11.3f\n", names[arm],
                agg[arm].ndr / n, agg[arm].arr / n, agg[arm].miss / n,
                agg[arm].false_rate / n);
  std::printf("\ncandidate delta: ndr %+.3f  arr %+.3f  miss %+.3f  "
              "false %+.3f over %zu scenarios\n",
              (agg[1].ndr - agg[0].ndr) / n, (agg[1].arr - agg[0].arr) / n,
              (agg[1].miss - agg[0].miss) / n,
              (agg[1].false_rate - agg[0].false_rate) / n, specs.size());

  if (lopsided)
    std::fprintf(stderr,
                 "\nab_ward: WARNING — one arm is blind to abnormals on a "
                 "scenario the other handles; do not promote blind\n");
  if (agg[0].arr == 0.0 || agg[1].arr == 0.0) {
    std::fprintf(stderr, "\nab_ward: an arm recognized no abnormal beats "
                         "anywhere — broken rollout\n");
    return 1;
  }
  return 0;
}
