// Batched evaluation engine benchmark.
//
// Two claims are measured, both against the same trained model:
//   1. Deterministic parallel training — the full two-step GA run with the
//      executor at N threads versus fully serial. The engine's contract is
//      that the two runs are *bit-identical* (same projection matrix, same
//      MF parameters, same alpha, same metrics); this harness asserts it
//      and fails hard on any divergence, so the reported speedup is only
//      ever quoted for equivalent results.
//   2. Batched evaluation — the contiguous BeatBatch path (projection and
//      integer classification over an arena, reusable scratch, no per-beat
//      allocation) versus the legacy per-beat loop, serial and with the
//      executor.
//
// Datasets are synthetic and self-contained (no cached splits), so the
// binary runs anywhere in seconds and the JSON report is reproducible.
#include "bench/common.hpp"

namespace {

hbrp::ecg::BeatDataset build_split(const hbrp::ecg::DatasetSpec& spec,
                                   std::size_t cap, std::uint64_t seed) {
  hbrp::ecg::DatasetBuilderConfig cfg;
  cfg.record_duration_s = 180.0;
  cfg.max_per_record_per_class = cap;
  cfg.seed = seed;
  return hbrp::ecg::build_dataset(spec, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbrp;
  const auto args = bench::BenchArgs::parse(argc, argv, "engine");
  bench::JsonReport report("engine");

  // The parallel arm: --threads if meaningful, else every hardware thread.
  const std::size_t nthreads =
      args.threads > 1 ? args.threads : core::Executor::hardware_threads();

  const double s = args.quick ? 0.4 : 1.0;
  std::printf("# building synthetic splits (scale %.2f)\n", s);
  const auto ts1 = build_split({150, 150, 150}, 20, 701);
  const auto ts2 = build_split({static_cast<std::size_t>(2500 * s),
                                static_cast<std::size_t>(250 * s),
                                static_cast<std::size_t>(300 * s)},
                               100, 702);
  const auto test = build_split({static_cast<std::size_t>(8000 * s),
                                 static_cast<std::size_t>(700 * s),
                                 static_cast<std::size_t>(900 * s)},
                                200, 703);

  core::TwoStepConfig cfg;
  cfg.coefficients = 8;
  cfg.downsample = 4;
  cfg.ga.population = args.quick ? 6 : 10;
  cfg.ga.generations = args.quick ? 3 : 6;
  cfg.seed = 0xDA7E2013;

  // --- 1. GA fitness evaluation: serial vs executor ----------------------
  bench::print_header("Engine — deterministic parallel training");
  core::TwoStepConfig serial_cfg = cfg;
  serial_cfg.threads = 1;
  const core::TwoStepTrainer serial_trainer(ts1, ts2, serial_cfg);
  bench::WallTimer timer;
  const auto trained_serial = serial_trainer.run();
  const double t_serial = timer.seconds();
  const auto history_serial = serial_trainer.last_history();

  core::TwoStepConfig parallel_cfg = cfg;
  parallel_cfg.threads = nthreads;
  const core::TwoStepTrainer parallel_trainer(ts1, ts2, parallel_cfg);
  timer.reset();
  const auto trained_parallel = parallel_trainer.run();
  const double t_parallel = timer.seconds();
  const auto history_parallel = parallel_trainer.last_history();

  // Bit-identity gate: every trained artefact must match exactly.
  bool identical =
      trained_serial.projector.matrix() == trained_parallel.projector.matrix() &&
      trained_serial.nfc.to_params() == trained_parallel.nfc.to_params() &&
      trained_serial.alpha_train == trained_parallel.alpha_train &&
      history_serial == history_parallel;
  const auto proj_s = core::project_dataset(test, trained_serial.projector);
  const auto proj_p = core::project_dataset(test, trained_parallel.projector);
  const auto cm_s =
      core::evaluate(trained_serial.nfc, proj_s, trained_serial.alpha_train);
  const auto cm_p = core::evaluate(trained_parallel.nfc, proj_p,
                                   trained_parallel.alpha_train);
  identical = identical && cm_s.ndr() == cm_p.ndr() &&
              cm_s.arr() == cm_p.arr();

  const double speedup = t_parallel > 0.0 ? t_serial / t_parallel : 0.0;
  std::printf("serial (1 thread):    %8.2f s\n", t_serial);
  std::printf("executor (%zu threads): %8.2f s  -> speedup %.2fx\n", nthreads,
              t_parallel, speedup);
  std::printf("bit-identical models and metrics: %s\n",
              identical ? "yes" : "NO — DETERMINISM VIOLATION");
  if (!identical) {
    std::fprintf(stderr,
                 "bench_engine: parallel training diverged from serial\n");
    return 1;
  }

  // --- 2. Batched vs per-beat evaluation ---------------------------------
  bench::print_header("Engine — batched evaluation throughput");
  const auto bundle = trained_serial.quantize();
  const core::BeatBatch batch = core::BeatBatch::from_dataset(test);
  const core::Executor executor(nthreads);
  const std::size_t reps = args.quick ? 3 : 10;

  timer.reset();
  core::ConfusionMatrix cm_legacy;
  for (std::size_t r = 0; r < reps; ++r)
    cm_legacy = core::evaluate_embedded(bundle, test);
  const double t_legacy = timer.seconds();

  timer.reset();
  core::ConfusionMatrix cm_batch;
  for (std::size_t r = 0; r < reps; ++r)
    cm_batch = core::evaluate_embedded(bundle, batch);
  const double t_batch = timer.seconds();

  timer.reset();
  core::ConfusionMatrix cm_batch_mt;
  for (std::size_t r = 0; r < reps; ++r)
    cm_batch_mt = core::evaluate_embedded(bundle, batch, &executor);
  const double t_batch_mt = timer.seconds();

  if (cm_legacy.ndr() != cm_batch.ndr() ||
      cm_legacy.arr() != cm_batch.arr() ||
      cm_legacy.ndr() != cm_batch_mt.ndr() ||
      cm_legacy.arr() != cm_batch_mt.arr()) {
    std::fprintf(stderr,
                 "bench_engine: batched evaluation diverged from per-beat\n");
    return 1;
  }

  const double beats = static_cast<double>(batch.size() * reps);
  auto rate = [beats](double t) { return t > 0.0 ? beats / t : 0.0; };
  std::printf("%zu beats x %zu reps (NDR %.3f, ARR %.3f — all paths agree)\n",
              batch.size(), reps, cm_legacy.ndr(), cm_legacy.arr());
  std::printf("per-beat loop:          %8.0f beats/s\n", rate(t_legacy));
  std::printf("batched, serial:        %8.0f beats/s  (%.2fx)\n",
              rate(t_batch), t_batch > 0.0 ? t_legacy / t_batch : 0.0);
  std::printf("batched, %zu threads:    %8.0f beats/s  (%.2fx)\n", nthreads,
              rate(t_batch_mt), t_batch_mt > 0.0 ? t_legacy / t_batch_mt : 0.0);

  report.set("threads", nthreads);
  report.set("hardware_threads", core::Executor::hardware_threads());
  report.set("ga_train_serial_s", t_serial);
  report.set("ga_train_parallel_s", t_parallel);
  report.set("ga_train_speedup", speedup);
  report.set("bit_identical", identical);
  report.set("ndr", cm_s.ndr());
  report.set("arr", cm_s.arr());
  report.set("test_beats", batch.size());
  report.set("eval_reps", reps);
  report.set("eval_perbeat_beats_per_s", rate(t_legacy));
  report.set("eval_batched_beats_per_s", rate(t_batch));
  report.set("eval_batched_mt_beats_per_s", rate(t_batch_mt));
  report.set("eval_batched_speedup",
             t_batch > 0.0 ? t_legacy / t_batch : 0.0);
  report.set("eval_batched_mt_speedup",
             t_batch_mt > 0.0 ? t_legacy / t_batch_mt : 0.0);
  report.write(args.json_path);
  return 0;
}
