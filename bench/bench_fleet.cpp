// Fleet service throughput: sessions x reactors scaling grid.
//
// Replays S concurrent synthetic patient streams through a
// service::FleetEngine for every (sessions, reactors) cell of a grid and
// reports ingest throughput (samples/s), delivered beats, per-beat latency
// quantiles and the engine's per-phase pump timing. A cell with R reactors
// runs R replay threads, each owning the sessions pinned to one engine
// shard and driving that shard's pump_shard() — exactly the multi-reactor
// gateway's schedule, minus the sockets. The per-session replay protocol —
// round-robin 1024-sample packets, one shard pump per round, drain, close —
// is identical in every cell, so the engine's determinism contract applies:
// for a given session count, every cell must deliver bit-identical
// per-session result sequences regardless of the reactor/shard count. The
// bench *gates* on that (exit 1 on any divergence); the speedup numbers are
// reported but not gated, since they depend on the host's core count
// (cpu_count is stamped into the report for exactly that reason — on a
// 1-core container the whole grid is flat by construction).
//
// Output: BENCH_fleet.json with the full grid, per-row speedups vs the
// serial (reactors=1) baseline of the same session count, and the speedup
// of the widest cell over its serial baseline. Full (non-quick) runs also
// emit fleet_widest_speedup, which scripts/perf_gate.py compares between
// committed full-run baselines; quick runs omit it so a quick-vs-full
// comparison warn-skips instead of comparing different grids.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <span>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/trainer.hpp"
#include "ecg/synth.hpp"
#include "service/fleet.hpp"

namespace {

using namespace hbrp;
using service::SessionId;
using service::SessionResult;

// Everything that identifies a delivered beat. Two runs are bit-identical
// iff their per-session signature vectors are equal.
struct BeatSig {
  std::uint64_t sequence;
  std::size_t r_peak;
  ecg::BeatClass predicted;
  dsp::SignalQuality quality;
  bool operator==(const BeatSig&) const = default;
};

struct CellResult {
  std::size_t sessions = 0;
  std::size_t reactors = 0;
  double wall_s = 0.0;
  double samples_per_s = 0.0;
  std::uint64_t beats = 0;
  double p50_us = 0.0;  // worst per-session p50
  double p99_us = 0.0;  // worst per-session p99
  // Cumulative per-phase pump time, summed over shard bodies (with R
  // reactors the parallel phases accumulate up to R x wall clock).
  double drain_s = 0.0;
  double classify_s = 0.0;
  double deliver_s = 0.0;
  std::vector<std::vector<BeatSig>> per_session;
};

embedded::EmbeddedClassifier train_quick(std::size_t threads) {
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 180.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 301;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 100;
  dcfg.seed = 302;
  const auto ts2 = ecg::build_dataset({2500, 220, 280}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 8;
  tcfg.ga.generations = 6;
  tcfg.seed = 303;
  tcfg.threads = threads;
  return core::TwoStepTrainer(ts1, ts2, tcfg).run().quantize();
}

// One grid cell: replay `streams[0..sessions)` through a fresh engine with
// `reactors` shards, one replay/pump thread per shard.
CellResult run_cell(const embedded::EmbeddedClassifier& classifier,
                    const std::vector<std::vector<double>>& streams,
                    std::size_t sessions, std::size_t reactors) {
  CellResult cell;
  cell.sessions = sessions;
  cell.reactors = reactors;
  cell.per_session.resize(sessions);

  service::FleetConfig fcfg;
  // The replay threads ARE the parallelism (the gateway's reactor model);
  // the engine's own executor stays serial and unused.
  fcfg.threads = 1;
  fcfg.shards = reactors;
  fcfg.max_sessions = sessions;
  service::FleetEngine engine(classifier, fcfg);

  std::vector<SessionId> ids;
  ids.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    // Default placement is round-robin, so session i lands on shard
    // i % reactors — replay thread r below owns exactly the i % R == r set.
    const auto id = engine.open_session([&cell, i](const SessionResult& r) {
      cell.per_session[i].push_back(
          {r.sequence, r.beat.r_peak, r.beat.predicted, r.beat.quality});
    });
    if (!id) {
      std::fprintf(stderr, "open_session refused at %zu\n", i);
      std::exit(1);
    }
    ids.push_back(*id);
  }

  std::atomic<std::uint64_t> total_samples{0};
  constexpr std::size_t kPacket = 1024;
  bench::WallTimer timer;

  const auto replay_shard = [&](std::size_t r) {
    std::uint64_t my_samples = 0;
    std::size_t offset = 0;
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t i = r; i < sessions; i += reactors) {
        if (offset >= streams[i].size()) continue;
        any = true;
        const std::size_t n = std::min(kPacket, streams[i].size() - offset);
        std::span<const double> packet(streams[i].data() + offset, n);
        // Block policy + per-round shard pump: the queue bound is never
        // hit, so nothing is ever deferred and the replay is lossless.
        while (true) {
          const auto res = engine.offer(ids[i], packet);
          my_samples += res.accepted;
          if (res.deferred == 0) break;
          packet = packet.last(res.deferred);
          engine.pump_shard(r);
        }
      }
      offset += kPacket;
      engine.pump_shard(r);
    }
    while (engine.shard_queued_samples(r) > 0) engine.pump_shard(r);
    total_samples.fetch_add(my_samples, std::memory_order_relaxed);
  };

  if (reactors == 1) {
    replay_shard(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(reactors);
    for (std::size_t r = 0; r < reactors; ++r)
      threads.emplace_back(replay_shard, r);
    for (std::thread& t : threads) t.join();
  }

  for (const SessionId id : ids) {
    const auto* t = engine.session_telemetry(id);
    cell.p50_us = std::max(cell.p50_us, t->latency.quantile_us(0.50));
    cell.p99_us = std::max(cell.p99_us, t->latency.quantile_us(0.99));
  }
  for (const SessionId id : ids) engine.close_session(id);
  cell.wall_s = timer.seconds();

  const service::FleetTelemetry& ft = engine.telemetry();
  cell.beats = ft.beats_out.load();
  cell.drain_s = static_cast<double>(ft.drain_ns.load()) / 1e9;
  cell.classify_s = static_cast<double>(ft.classify_ns.load()) / 1e9;
  cell.deliver_s = static_cast<double>(ft.deliver_ns.load()) / 1e9;
  cell.samples_per_s =
      cell.wall_s > 0.0
          ? static_cast<double>(total_samples.load()) / cell.wall_s
          : 0.0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, "fleet");
  bench::JsonReport report("fleet");
  bench::print_header(
      "Fleet service layer: multi-session scaling and determinism gate");

  const std::vector<std::size_t> session_axis =
      args.quick ? std::vector<std::size_t>{1, 8}
                 : std::vector<std::size_t>{1, 16, 64, 256};
  const std::vector<std::size_t> reactor_axis =
      args.quick ? std::vector<std::size_t>{1, 2}
                 : std::vector<std::size_t>{1, 2, 4, 8};
  const double seconds = args.quick ? 10.0 : 30.0;
  const std::size_t max_sessions = session_axis.back();

  std::printf("# training classifier (GA %zux%zu, %zu threads)\n",
              args.ga_population, args.ga_generations, args.threads);
  const auto classifier = train_quick(args.threads);

  // One stream per patient slot, shared by every cell: the same data must
  // flow through every configuration for the identity gate to mean
  // anything. Profiles rotate so the fleet mixes rhythms.
  const ecg::RecordProfile profiles[] = {
      ecg::RecordProfile::NormalSinus, ecg::RecordProfile::PvcOccasional,
      ecg::RecordProfile::PvcBigeminy, ecg::RecordProfile::Lbbb};
  std::vector<std::vector<double>> streams(max_sessions);
  for (std::size_t i = 0; i < max_sessions; ++i) {
    ecg::SynthConfig scfg;
    scfg.profile = profiles[i % std::size(profiles)];
    scfg.duration_s = seconds;
    scfg.num_leads = 1;
    scfg.seed = 9000 + i;
    const auto rec = ecg::generate_record(scfg);
    streams[i].assign(rec.leads[0].begin(), rec.leads[0].end());
  }

  bench::WallTimer total_timer;
  std::vector<CellResult> cells;
  std::printf("\n%9s %9s %10s %14s %8s %9s %9s %10s %11s %10s\n", "sessions",
              "reactors", "wall (s)", "samples/s", "beats", "p50 (us)",
              "p99 (us)", "drain (s)", "classify (s)", "deliver (s)");
  for (const std::size_t s : session_axis) {
    for (const std::size_t r : reactor_axis) {
      cells.push_back(run_cell(classifier, streams, s, r));
      const CellResult& c = cells.back();
      std::printf("%9zu %9zu %10.3f %14.0f %8llu %9.0f %9.0f %10.4f %11.4f "
                  "%10.4f\n",
                  c.sessions, c.reactors, c.wall_s, c.samples_per_s,
                  static_cast<unsigned long long>(c.beats), c.p50_us, c.p99_us,
                  c.drain_s, c.classify_s, c.deliver_s);
    }
  }

  // --- the determinism gate: every cell vs its serial baseline ----------
  // reactor_axis[0] == 1, so cells[first cell of each session count] is the
  // serial (one reactor, one shard) reference.
  std::size_t mismatches = 0;
  for (std::size_t si = 0; si < session_axis.size(); ++si) {
    const CellResult& ref = cells[si * reactor_axis.size()];
    for (std::size_t ri = 1; ri < reactor_axis.size(); ++ri) {
      const CellResult& c = cells[si * reactor_axis.size() + ri];
      for (std::size_t i = 0; i < ref.per_session.size(); ++i) {
        if (c.per_session[i] != ref.per_session[i]) {
          ++mismatches;
          std::fprintf(stderr,
                       "IDENTITY VIOLATION: sessions=%zu reactors=%zu "
                       "session %zu diverges from serial baseline "
                       "(%zu vs %zu beats)\n",
                       c.sessions, c.reactors, i, c.per_session[i].size(),
                       ref.per_session[i].size());
        }
      }
    }
  }
  std::printf("\nbit-identity vs serial baseline: %s\n",
              mismatches == 0 ? "PASS" : "FAIL");

  // Per-row speedup vs the serial cell of the same session count, plus the
  // widest-cell headline (reported, not gated here: it is a property of
  // the host's core count).
  std::vector<double> g_speedup(cells.size(), 0.0);
  for (std::size_t si = 0; si < session_axis.size(); ++si) {
    const double serial_rate = cells[si * reactor_axis.size()].samples_per_s;
    for (std::size_t ri = 0; ri < reactor_axis.size(); ++ri) {
      const std::size_t idx = si * reactor_axis.size() + ri;
      g_speedup[idx] =
          serial_rate > 0.0 ? cells[idx].samples_per_s / serial_rate : 0.0;
    }
  }
  const CellResult& wide_parallel = cells.back();
  const double speedup = g_speedup.back();
  std::printf("speedup at %zu sessions, %zu reactors vs serial: %.2fx "
              "(host has %u cpu(s))\n",
              wide_parallel.sessions, wide_parallel.reactors, speedup,
              std::thread::hardware_concurrency());

  std::vector<double> g_sessions, g_reactors, g_wall, g_rate, g_beats, g_p50,
      g_p99, g_drain, g_classify, g_deliver;
  for (const CellResult& c : cells) {
    g_sessions.push_back(static_cast<double>(c.sessions));
    g_reactors.push_back(static_cast<double>(c.reactors));
    g_wall.push_back(c.wall_s);
    g_rate.push_back(c.samples_per_s);
    g_beats.push_back(static_cast<double>(c.beats));
    g_p50.push_back(c.p50_us);
    g_p99.push_back(c.p99_us);
    g_drain.push_back(c.drain_s);
    g_classify.push_back(c.classify_s);
    g_deliver.push_back(c.deliver_s);
  }
  report.set("quick", args.quick);
  report.set("stream_seconds", seconds);
  report.set("cpu_count",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  report.set("grid_sessions", std::span<const double>(g_sessions));
  report.set("grid_reactors", std::span<const double>(g_reactors));
  // Kept for report-reader continuity: a cell's pump parallelism.
  report.set("grid_threads", std::span<const double>(g_reactors));
  report.set("grid_wall_s", std::span<const double>(g_wall));
  report.set("grid_samples_per_s", std::span<const double>(g_rate));
  report.set("grid_beats", std::span<const double>(g_beats));
  report.set("grid_p50_us", std::span<const double>(g_p50));
  report.set("grid_p99_us", std::span<const double>(g_p99));
  report.set("grid_drain_s", std::span<const double>(g_drain));
  report.set("grid_classify_s", std::span<const double>(g_classify));
  report.set("grid_deliver_s", std::span<const double>(g_deliver));
  report.set("grid_speedup", std::span<const double>(g_speedup));
  report.set("speedup_widest_vs_serial", speedup);
  if (!args.quick) {
    // Gate key (matched by perf_gate.py's *_speedup policy). Full runs
    // only: a quick run's grid is too small to compare against it.
    report.set("fleet_widest_speedup", speedup);
  }
  report.set("identity_mismatches", mismatches);
  report.set("identity_pass", mismatches == 0);
  report.set("wall_s", total_timer.seconds());
  report.write(args.json_path);
  return mismatches == 0 ? 0 : 1;
}
