// Ablation — how much does the genetic optimization of the projection
// matrix actually buy?
//
// The paper (Sections I and III-A) argues that although the Achlioptas JL
// bound holds for *any* matrix from the ensemble, "empirical evidence shows
// that certain projections perform better than others", and that a small GA
// (population 20, 30 generations) finds a good one. This harness quantifies
// both claims on training set 2:
//   1. the fitness distribution (NDR at ARR >= 97%) over independent random
//      Achlioptas matrices — the spread the GA exploits;
//   2. the GA result versus the best random draw at the same evaluation
//      budget (pure random search baseline).
#include <algorithm>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hbrp;
  const auto args =
      bench::BenchArgs::parse(argc, argv, "ablation_projections");
  bench::JsonReport report("ablation_projections");
  const bench::WallTimer timer;
  const auto splits = bench::load_splits(args);

  const auto cfg = bench::trainer_config(args, 8);
  const core::TwoStepTrainer trainer(splits.training1, splits.training2, cfg);

  bench::print_header(
      "Ablation — fitness spread of random projections (k = 8, d = 50)");
  const std::size_t draws = args.quick ? 8 : 40;
  math::Rng rng(314159);
  std::vector<double> fitness;
  for (std::size_t i = 0; i < draws; ++i)
    fitness.push_back(
        trainer.fitness(rp::make_achlioptas(8, 50, rng)));
  std::sort(fitness.begin(), fitness.end());
  std::printf("random draws: %zu\n", draws);
  std::printf("  min    %.4f\n", fitness.front());
  std::printf("  median %.4f\n", fitness[fitness.size() / 2]);
  std::printf("  max    %.4f\n", fitness.back());
  std::printf("  spread %.4f (the headroom the GA can exploit)\n",
              fitness.back() - fitness.front());

  bench::print_header("Ablation — GA vs random search, same budget");
  const auto trained = trainer.run();
  const auto& history = trainer.last_history();
  const double ga_fitness = history.empty() ? 0.0 : history.back();
  // Random-search baseline with the GA's evaluation budget.
  const std::size_t budget =
      cfg.ga.population +
      cfg.ga.generations * (cfg.ga.population - cfg.ga.elite);
  double random_best = 0.0;
  math::Rng rng2(2718281);
  for (std::size_t i = 0; i < budget; ++i)
    random_best = std::max(
        random_best, trainer.fitness(rp::make_achlioptas(8, 50, rng2)));
  std::printf("GA (%zu x %zu, %zu evals): fitness %.4f\n", cfg.ga.population,
              cfg.ga.generations, budget, ga_fitness);
  std::printf("random search (%zu evals): fitness %.4f\n", budget,
              random_best);
  std::printf("GA generation history:");
  for (const double f : history) std::printf(" %.4f", f);
  std::printf("\n");

  // The number that matters: generalization of the GA winner to the test
  // set at the ARR >= 97%% operating point.
  const auto test_proj = core::project_dataset(splits.test, trained.projector);
  const auto cm = bench::at_min_arr(
      [&](double alpha) {
        return core::evaluate(trained.nfc, test_proj, alpha);
      },
      0.97);
  std::printf("\nGA winner on test set: NDR %.2f%% at ARR %.2f%%\n",
              100.0 * cm.ndr(), 100.0 * cm.arr());

  report.set("random_draws", draws);
  report.set("random_fitness_min", fitness.front());
  report.set("random_fitness_median", fitness[fitness.size() / 2]);
  report.set("random_fitness_max", fitness.back());
  report.set("ga_fitness", ga_fitness);
  report.set("random_search_fitness", random_best);
  report.set("ga_history", std::span<const double>(history));
  report.set("test_ndr_pct", 100.0 * cm.ndr());
  report.set("test_arr_pct", 100.0 * cm.arr());
  report.set("threads", args.threads);
  report.set("wall_s", timer.seconds());
  report.write(args.json_path);
  return 0;
}
