// Table III reproduction: code size and duty cycle of the sub-systems of
// Fig. 6 on the IcyHeart platform at 6 MHz, using 8 coefficients.
//
// Rows:
//   RP-classifier                     — the projection + integer NFC alone;
//   RP + filtering + peak detection   — sub-system (1);
//   Multi-lead delineation            — sub-system (2), always on;
//   Proposed system                   — system (3), delineation gated by the
//                                       classifier.
//
// Duty cycles come from the analytic cycle model (platform/cycles.hpp) fed
// with the *measured* workload of the test set: the beat rate and the
// fraction of beats the trained classifier actually flags pathological.
// Code sizes come from the calibrated inventory (platform/codesize.hpp).
//
// --deque re-runs the duty-cycle column with this library's O(1) monotonic-
// deque morphology instead of the reference firmware's naive O(L) loops —
// the implementation ablation called out in DESIGN.md.
#include <string>

#include "bench/common.hpp"
#include "platform/codesize.hpp"
#include "platform/energy.hpp"

namespace {

void print_rows(const hbrp::platform::KernelCosts& costs,
                const hbrp::platform::ScenarioParams& scenario,
                hbrp::bench::JsonReport& report, const char* report_prefix) {
  using namespace hbrp::platform;
  const IcyHeartSpec soc;
  const CodeSizeModel code;
  struct Row {
    const char* name;
    double kb;
    double duty;
    double paper_kb;
    double paper_duty;
  };
  const Row rows[] = {
      {"RP-classifier", code.rp_classifier_kb(),
       load_rp_classifier(costs, scenario).duty_cycle(soc), 1.64, 0.01},
      {"RP + filtering + peak detection (1)", code.subsystem1_kb(),
       load_subsystem1(costs, scenario).duty_cycle(soc), 30.29, 0.12},
      {"Multi-lead delineation (2)", code.subsystem2_kb(),
       load_subsystem2(costs, scenario).duty_cycle(soc), 46.39, 0.83},
      {"Proposed system (3)", code.system3_kb(),
       load_system3(costs, scenario).duty_cycle(soc), 76.68, 0.30},
  };
  std::printf("%-38s %10s %10s   %s\n", "sub-system", "code KB", "duty",
              "(paper KB / duty)");
  for (const Row& r : rows)
    std::printf("%-38s %10.2f %10.3f   (%.2f / %.2f)\n", r.name, r.kb, r.duty,
                r.paper_kb, r.paper_duty);

  const double saving = (rows[2].duty - rows[3].duty) / rows[2].duty;
  std::printf("\nrun-time of system (3) vs always-on delineation (2): "
              "%.0f%% lower (paper: 63%%)\n",
              100.0 * saving);

  const std::string p = report_prefix;
  report.set(p + "duty_rp_classifier", rows[0].duty);
  report.set(p + "duty_subsystem1", rows[1].duty);
  report.set(p + "duty_subsystem2", rows[2].duty);
  report.set(p + "duty_system3", rows[3].duty);
  report.set(p + "runtime_saving_pct", 100.0 * saving);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbrp;
  bool deque_ablation = false;
  const bench::BenchFlag extra[] = {
      {"--deque", "re-run duty cycles with O(1) monotonic-deque morphology",
       &deque_ablation}};
  const auto args =
      bench::BenchArgs::parse(argc, argv, "table3_runtime", extra);
  bench::JsonReport report("table3_runtime");
  const bench::WallTimer timer;

  const auto splits = bench::load_splits(args);
  const core::BeatBatch test_batch = core::BeatBatch::from_dataset(splits.test);
  const core::Executor executor(args.threads);

  // Train the k = 8 classifier and measure the workload it induces on the
  // test set: beat rate and flagged fraction at the ARR >= 97% operating
  // point.
  const auto cfg = bench::trainer_config(args, 8);
  const core::TwoStepTrainer trainer(splits.training1, splits.training2, cfg);
  const auto trained = trainer.run();
  auto bundle = trained.quantize();
  const auto cm = bench::at_min_arr(
      [&](double alpha) {
        bundle.set_alpha_q16(math::to_q16(alpha));
        return core::evaluate_embedded(bundle, test_batch, &executor);
      },
      0.97);

  platform::ScenarioParams scenario;
  scenario.beat_rate_hz = 74.0 / 60.0;  // MIT-BIH average heart rate
  scenario.flagged_fraction = cm.flagged_fraction();
  scenario.coefficients = 8;
  std::printf("# measured on test set: flagged fraction %.3f "
              "(ARR %.3f, NDR %.3f)\n\n",
              cm.flagged_fraction(), cm.arr(), cm.ndr());

  bench::print_header(
      "Table III — code size and duty cycle on IcyHeart @ 6 MHz "
      "(8 coefficients)");
  const platform::KernelCosts naive(platform::CycleModel{}, 360,
                                    platform::MorphologyImpl::NaivePerSample);
  print_rows(naive, scenario, report, "");

  if (deque_ablation) {
    bench::print_header(
        "Ablation — duty cycles with O(1) monotonic-deque morphology");
    const platform::KernelCosts deq(
        platform::CycleModel{}, 360,
        platform::MorphologyImpl::MonotonicDeque);
    print_rows(deq, scenario, report, "deque_");
  }

  std::printf("\nclassifier parameter memory: %zu bytes "
              "(projection %zu + MF tables %zu) — \"less than 2 KB\"\n",
              bundle.memory_bytes(),
              bundle.projector().packed().memory_bytes(),
              bundle.classifier().memory_bytes());

  report.set("flagged_fraction", cm.flagged_fraction());
  report.set("arr", cm.arr());
  report.set("ndr", cm.ndr());
  report.set("classifier_memory_bytes", bundle.memory_bytes());
  report.set("test_beats", test_batch.size());
  report.set("threads", executor.threads());
  report.set("wall_s", timer.seconds());
  report.write(args.json_path);
  return 0;
}
