// Adversarial scenario bench: the robustness envelope the CI gate watches.
//
// Replays the standard scenario suite (scenario::standard_scenarios —
// AFib-like RR chaos, sustained VT, pacing, artefact storms, electrode
// drops, clock skew, sample-rate mismatch, clean-ward control) through:
//
//   direct     FleetEngine ingest — scored against AAMI ground truth
//              (NDR/ARR/miss/false per scenario);
//   stream     the wire path under lossless chaos (fragmentation +
//              jitter), *gated* on bit-identity with direct (exit 1);
//   selective  the wire path under lossy chaos (seeded connection kills +
//              bit flips), *gated* on upload integrity: every FULL_BEAT
//              gets exactly one verdict (exit 1 otherwise); bytes on the
//              wire recorded per policy.
//
// Everything is deterministic: fixed scenario seeds, a fixed trainer
// config (NOT scaled by --quick, so quick-run metrics are directly
// comparable against the committed full-run BENCH_scenarios.json), and
// seeded chaos. --quick only trims the suite to its first three
// scenarios; scripts/robustness_gate.py skips baseline keys absent from
// a fresh report, so the quick run still gates what it does cover.
//
// Output: BENCH_scenarios.json (scripts/robustness_gate.py compares a
// fresh run against the committed baseline and fails CI on degradation).
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "scenario/chaos.hpp"
#include "scenario/episodes.hpp"
#include "scenario/runner.hpp"

namespace {

using namespace hbrp;

constexpr double kDurationS = 40.0;
constexpr std::uint64_t kSeedBase = 9000;

embedded::EmbeddedClassifier train_fixed(std::size_t threads) {
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 180.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 311;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 100;
  dcfg.seed = 312;
  const auto ts2 = ecg::build_dataset({2500, 220, 280}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 8;
  tcfg.ga.generations = 6;
  tcfg.seed = 313;
  tcfg.threads = threads;
  return core::TwoStepTrainer(ts1, ts2, tcfg).run().quantize();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, "scenarios");
  bench::JsonReport report("scenarios");

  std::printf("training classifier (fixed config, seeds 311/312/313)...\n");
  const auto classifier = train_fixed(args.threads);

  auto specs = scenario::standard_scenarios(kDurationS, kSeedBase);
  if (args.quick) specs.resize(3);  // clean_ward, afib, sustained_vt

  scenario::ChaosConfig lossless;
  lossless.seed = 5;
  lossless.max_burst = 97;
  lossless.jitter_probability = 0.3;
  lossless.jitter_max_ms = 2;

  scenario::ChaosConfig lossy;
  lossy.seed = 17;
  lossy.kill_probability = 0.5;
  lossy.kill_after_min_bytes = 2048;
  lossy.kill_after_max_bytes = 16384;
  lossy.bit_flip_rate = 5e-5;

  report.set("quick", args.quick);
  report.set("duration_s", kDurationS);
  report.set("seed_base", kSeedBase);
  report.set("scenario_count", specs.size());

  std::printf("\n%-18s %6s %6s %6s %6s %9s %9s %3s\n", "scenario", "NDR",
              "ARR", "miss", "false", "B(stream)", "B(select)", "id");
  bool all_ok = true;
  for (const auto& spec : specs) {
    const auto stream = scenario::build_scenario(spec);
    const auto direct = scenario::run_direct(classifier, stream);
    const auto score = scenario::score_verdicts(stream, direct);

    const auto wire_stream = scenario::run_wire(
        classifier, stream, net::TxPolicy::StreamEverything, &lossless);
    const bool identity =
        wire_stream.completed && wire_stream.verdicts == direct;

    const auto wire_sel = scenario::run_wire(
        classifier, stream, net::TxPolicy::Selective, &lossy, 1, 1,
        /*drain_budget_ms=*/120000);
    const bool selective_ok =
        wire_sel.completed &&
        wire_sel.tx.verdicts_rx == wire_sel.tx.beats_uploaded &&
        wire_sel.tx.verdicts_rx == wire_sel.verdicts.size();

    const std::string p = "sc_" + spec.name + "_";
    report.set(p + "beats", stream.truth.size());
    report.set(p + "obscured", score.obscured);
    report.set(p + "ndr", score.ndr);
    report.set(p + "arr", score.arr);
    report.set(p + "miss_rate", score.miss_rate);
    report.set(p + "false_rate", score.false_rate);
    report.set(p + "rr_sdnn_ms", stream.rr.sdnn_ms);
    report.set(p + "bytes_stream", wire_stream.tx.bytes_tx);
    report.set(p + "bytes_selective", wire_sel.tx.bytes_tx);
    report.set(p + "uploads", wire_sel.tx.beats_uploaded);
    report.set(p + "chaos_kills", wire_sel.chaos_kills);
    report.set(p + "chaos_bit_flips", wire_sel.chaos_bit_flips);
    report.set(p + "identity", identity);
    report.set(p + "selective_ok", selective_ok);

    std::printf("%-18s %6.3f %6.3f %6.3f %6.3f %9llu %9llu %3s\n",
                spec.name.c_str(), score.ndr, score.arr, score.miss_rate,
                score.false_rate,
                static_cast<unsigned long long>(wire_stream.tx.bytes_tx),
                static_cast<unsigned long long>(wire_sel.tx.bytes_tx),
                identity && selective_ok ? "ok" : "XX");
    if (!identity) {
      std::fprintf(stderr, "%s: wire/direct verdict divergence\n",
                   spec.name.c_str());
      all_ok = false;
    }
    if (!selective_ok) {
      std::fprintf(stderr,
                   "%s: selective integrity violation (uploads %llu, "
                   "verdicts %llu)\n",
                   spec.name.c_str(),
                   static_cast<unsigned long long>(
                       wire_sel.tx.beats_uploaded),
                   static_cast<unsigned long long>(wire_sel.tx.verdicts_rx));
      all_ok = false;
    }
  }

  report.set("all_ok", all_ok);
  report.write(args.json_path);
  std::printf("\nwrote %s\n", args.json_path.c_str());
  if (!all_ok) {
    std::fprintf(stderr, "scenario identity/integrity gate FAILED\n");
    return 1;
  }
  return 0;
}
