// Figure 5 reproduction: NDR/ARR Pareto fronts on the test set for the
// Gaussian (float), linearized (integer) and triangular (integer)
// membership functions.
//
// Setup per the paper: 50 samples acquired at 90 Hz (4x downsampling of the
// 200-sample window) projected on 8 coefficients; alpha_train fixed by the
// ARR >= 97% constraint on training set 2; alpha_test swept to trace the
// trade-off.
#include <vector>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hbrp;
  const auto args = bench::BenchArgs::parse(argc, argv, "fig5_pareto");
  bench::JsonReport report("fig5_pareto");
  const bench::WallTimer timer;
  const auto splits = bench::load_splits(args);
  const core::BeatBatch test_batch = core::BeatBatch::from_dataset(splits.test);
  const core::Executor executor(args.threads);

  const auto cfg = bench::trainer_config(args, 8);
  const core::TwoStepTrainer trainer(splits.training1, splits.training2, cfg);
  const core::TrainedClassifier trained = trainer.run();
  std::printf("# trained: alpha_train = %.4f\n", trained.alpha_train);

  const core::ProjectedDataset test_proj =
      core::project_dataset(splits.test, trained.projector);
  auto bundle_lin = trained.quantize(embedded::MfShape::Linearized);
  auto bundle_tri = trained.quantize(embedded::MfShape::Triangular);

  // Alpha grid: dense near zero (where the interesting trade-offs live).
  std::vector<double> alphas;
  for (double a = 0.0; a < 0.02; a += 0.002) alphas.push_back(a);
  for (double a = 0.02; a < 0.2; a += 0.01) alphas.push_back(a);
  for (double a = 0.2; a < 0.951; a += 0.05) alphas.push_back(a);
  // The extreme-recognition end: margins approach 1 only asymptotically, so
  // sample alpha densely near 1 (and include 1.0 itself: everything
  // Unknown -> ARR 100%).
  for (double a : {0.96, 0.97, 0.98, 0.99, 0.995, 0.999, 1.0})
    alphas.push_back(a);

  std::vector<core::OperatingPoint> gauss_pts, lin_pts, tri_pts;
  for (const double alpha : alphas) {
    const auto g = core::evaluate(trained.nfc, test_proj, alpha, &executor);
    gauss_pts.push_back({alpha, g.ndr(), g.arr()});
    bundle_lin.set_alpha_q16(math::to_q16(alpha));
    const auto l = core::evaluate_embedded(bundle_lin, test_batch, &executor);
    lin_pts.push_back({alpha, l.ndr(), l.arr()});
    bundle_tri.set_alpha_q16(math::to_q16(alpha));
    const auto t = core::evaluate_embedded(bundle_tri, test_batch, &executor);
    tri_pts.push_back({alpha, t.ndr(), t.arr()});
  }

  bench::print_header(
      "Figure 5 — NDR/ARR Pareto fronts (gaussian / linearized / triangular)");
  auto print_front = [](const char* name,
                        std::vector<core::OperatingPoint> pts) {
    const auto front = core::pareto_front(std::move(pts));
    std::printf("%s front (%zu points): ARR%%  NDR%%  alpha\n", name,
                front.size());
    for (const auto& p : front)
      std::printf("  %7.3f %7.3f %8.4f\n", 100.0 * p.arr, 100.0 * p.ndr,
                  p.alpha);
  };
  print_front("gaussian  ", gauss_pts);
  print_front("linearized", lin_pts);
  print_front("triangular", tri_pts);

  // The paper's summary observations at the high-recognition end.
  auto ndr_at = [](std::vector<core::OperatingPoint> pts, double arr) {
    const auto front = core::pareto_front(std::move(pts));
    double best = 0.0;
    for (const auto& p : front)
      if (p.arr >= arr) best = std::max(best, p.ndr);
    return 100.0 * best;
  };
  std::printf("\nNDR at ARR >= 98.5%%: gaussian %.1f%%, linearized %.1f%%, "
              "triangular %.1f%%\n",
              ndr_at(gauss_pts, 0.985), ndr_at(lin_pts, 0.985),
              ndr_at(tri_pts, 0.985));
  std::printf("(paper: gaussian/linearized ~87%%, triangular drops to ~62%%)\n");

  report.set("alpha_train", trained.alpha_train);
  report.set("ndr_at_arr985_gaussian_pct", ndr_at(gauss_pts, 0.985));
  report.set("ndr_at_arr985_linearized_pct", ndr_at(lin_pts, 0.985));
  report.set("ndr_at_arr985_triangular_pct", ndr_at(tri_pts, 0.985));
  report.set("alpha_points", alphas.size());
  report.set("test_beats", test_batch.size());
  report.set("threads", executor.threads());
  report.set("wall_s", timer.seconds());
  report.write(args.json_path);
  return 0;
}
