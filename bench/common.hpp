// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench binary accepts:
//   --quick        scale the GA and test set down for a fast smoke run
//   --scale=X      test-set scale factor in (0, 1] (overrides --quick's)
// and prints the paper's reported numbers next to the measured ones so the
// output is self-contained (see EXPERIMENTS.md for the recorded runs).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"

namespace hbrp::bench {

struct BenchArgs {
  bool quick = false;
  double test_scale = 1.0;
  std::size_t ga_population = 20;  // paper defaults (Section III-A)
  std::size_t ga_generations = 30;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
        args.test_scale = 0.1;
        args.ga_population = 6;
        args.ga_generations = 4;
      } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        args.test_scale = std::stod(argv[i] + 8);
      }
    }
    return args;
  }
};

/// The three Table-I splits, built once and cached on disk.
inline ecg::PaperSplits load_splits(const BenchArgs& args) {
  std::printf("# loading datasets (test scale %.2f; cached in %s)\n",
              args.test_scale,
              ecg::default_cache_dir().string().c_str());
  return ecg::load_paper_splits(args.test_scale);
}

inline core::TwoStepConfig trainer_config(const BenchArgs& args,
                                          std::size_t coefficients) {
  core::TwoStepConfig cfg;
  cfg.coefficients = coefficients;
  cfg.downsample = 4;
  cfg.min_arr = 0.97;
  cfg.ga.population = args.ga_population;
  cfg.ga.generations = args.ga_generations;
  cfg.seed = 0xDA7E2013;
  return cfg;
}

/// Smallest alpha_test at which `eval(alpha)` reaches `min_arr` on its
/// dataset, by bisection over the (monotone) ARR-vs-alpha curve; returns the
/// confusion matrix at that operating point. `Eval` maps alpha -> matrix.
template <typename Eval>
core::ConfusionMatrix at_min_arr(const Eval& eval, double min_arr,
                                 double* alpha_out = nullptr) {
  double lo = 0.0, hi = 1.0;
  core::ConfusionMatrix at_lo = eval(0.0);
  if (at_lo.arr() >= min_arr) {
    if (alpha_out != nullptr) *alpha_out = 0.0;
    return at_lo;
  }
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (eval(mid).arr() >= min_arr)
      hi = mid;
    else
      lo = mid;
  }
  if (alpha_out != nullptr) *alpha_out = hi;
  return eval(hi);
}

inline void print_header(const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("==============================================================\n");
}

}  // namespace hbrp::bench
