// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench binary accepts:
//   --quick        scale the GA and test set down for a fast smoke run
//   --scale=X      test-set scale factor in (0, 1] (overrides --quick's)
//   --threads=N    executor threads for training/evaluation (0 = hardware
//                  concurrency, 1 = serial; results are bit-identical
//                  for any value — see core/executor.hpp)
//   --json=PATH    machine-readable report path (default BENCH_<name>.json)
// plus any per-binary flags registered via BenchFlag. Parsing is strict:
// an unknown or malformed flag prints the usage and exits non-zero, so a
// typo can never silently fall back to a default configuration.
//
// Each binary prints the paper's reported numbers next to the measured ones
// (see EXPERIMENTS.md for the recorded runs) and writes the measured
// numbers, wall time and throughput to its JSON report.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "kernels/cpu.hpp"

namespace hbrp::bench {

/// A per-binary boolean flag (e.g. bench_table2's --downsample-sweep),
/// registered with BenchArgs::parse so strict parsing knows about it.
struct BenchFlag {
  const char* name;  ///< full spelling, including the leading "--"
  const char* help;
  bool* value;  ///< set to true when the flag is present
};

struct BenchArgs {
  bool quick = false;
  double test_scale = 1.0;
  std::size_t ga_population = 20;  // paper defaults (Section III-A)
  std::size_t ga_generations = 30;
  /// Executor threads (0 = hardware concurrency, 1 = fully serial).
  std::size_t threads = 1;
  /// Where the machine-readable report goes (BENCH_<name>.json by default).
  std::string json_path;

  /// Strict parser: exits with usage on any unknown or malformed argument.
  static BenchArgs parse(int argc, char** argv, const char* bench_name,
                         std::span<const BenchFlag> extra = {});
};

[[noreturn]] inline void usage_and_exit(const char* prog,
                                        std::span<const BenchFlag> extra) {
  std::fprintf(stderr, "usage: %s [flags]\n", prog);
  std::fprintf(stderr,
               "  --quick        fast smoke run (small GA, 10%% test set)\n"
               "  --scale=X      test-set scale factor in (0, 1]\n"
               "  --threads=N    executor threads (0 = hardware, 1 = serial;"
               " default 1)\n"
               "  --json=PATH    JSON report path (default BENCH_<name>.json)"
               "\n");
  for (const BenchFlag& f : extra)
    std::fprintf(stderr, "  %-14s %s\n", f.name, f.help);
  std::exit(2);
}

inline BenchArgs BenchArgs::parse(int argc, char** argv,
                                  const char* bench_name,
                                  std::span<const BenchFlag> extra) {
  BenchArgs args;
  args.json_path = std::string("BENCH_") + bench_name + ".json";
  const char* prog = argc > 0 ? argv[0] : bench_name;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      args.quick = true;
      args.test_scale = 0.1;
      args.ga_population = 6;
      args.ga_generations = 4;
      continue;
    }
    if (std::strncmp(a, "--scale=", 8) == 0) {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(a + 8, &end);
      if (errno != 0 || end == a + 8 || *end != '\0' || !(v > 0.0) ||
          v > 1.0) {
        std::fprintf(stderr, "%s: bad value in '%s' (want 0 < X <= 1)\n",
                     prog, a);
        usage_and_exit(prog, extra);
      }
      args.test_scale = v;
      continue;
    }
    if (std::strncmp(a, "--threads=", 10) == 0) {
      char* end = nullptr;
      errno = 0;
      const unsigned long v = std::strtoul(a + 10, &end, 10);
      if (errno != 0 || end == a + 10 || *end != '\0' || a[10] == '-') {
        std::fprintf(stderr, "%s: bad value in '%s' (want N >= 0)\n", prog,
                     a);
        usage_and_exit(prog, extra);
      }
      args.threads = static_cast<std::size_t>(v);
      continue;
    }
    if (std::strncmp(a, "--json=", 7) == 0) {
      if (a[7] == '\0') {
        std::fprintf(stderr, "%s: empty path in '%s'\n", prog, a);
        usage_and_exit(prog, extra);
      }
      args.json_path = a + 7;
      continue;
    }
    bool matched = false;
    for (const BenchFlag& f : extra) {
      if (std::strcmp(a, f.name) == 0) {
        *f.value = true;
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", prog, a);
      usage_and_exit(prog, extra);
    }
  }
  return args;
}

/// Wall-clock stopwatch for the per-bench timing figures.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Minimal ordered JSON object writer for the BENCH_<name>.json reports.
/// Keys are emitted in insertion order; setting an existing key overwrites
/// its value in place.
class JsonReport {
 public:
  /// Every report opens with its provenance: which bench, which commit the
  /// binary was configured from, when the run started (UTC), and the machine
  /// context a perf number is meaningless without — CPU model, the SIMD
  /// level the kernel dispatcher actually selected at startup (so a report
  /// produced under HBRP_FORCE_SCALAR=1 is self-describing), whether the
  /// host looks virtualized, and the compiler flags the binary was built
  /// with. scripts/perf_gate.py keys off cpu_model/virtualized to decide
  /// whether two reports are comparable. The per-run thread count is stamped
  /// by each bench main next to its own figures.
  explicit JsonReport(const std::string& bench_name) {
    set("bench", bench_name);
    // Report-format version, mirrored by the gate scripts: a gate reading
    // a report with a NEWER schema warns and skips unknown keys instead of
    // failing, so adding keys here never breaks an older checkout's CI.
    set("schema_version", 2);
#ifdef HBRP_GIT_COMMIT
    set("git_commit", HBRP_GIT_COMMIT);
#else
    set("git_commit", "unknown");
#endif
    const std::time_t now = std::time(nullptr);
    char stamp[32] = "unknown";
    if (std::tm tm{}; gmtime_r(&now, &tm) != nullptr)
      std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm);
    set("started_utc", stamp);
    set("cpu_model", kernels::cpu_model_name());
    set("simd_level", kernels::to_string(kernels::active_level()));
    set("virtualized", kernels::cpu_is_virtualized());
#ifdef HBRP_CXX_FLAGS
    set("cxx_flags", HBRP_CXX_FLAGS);
#else
    set("cxx_flags", "unknown");
#endif
  }

  void set(const std::string& key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    put(key, buf);
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void set(const std::string& key, T v) {
    put(key, std::to_string(v));
  }
  void set(const std::string& key, bool v) { put(key, v ? "true" : "false"); }
  void set(const std::string& key, const char* v) {
    put(key, quote(v));
  }
  void set(const std::string& key, const std::string& v) {
    put(key, quote(v));
  }
  void set(const std::string& key, std::span<const double> v) {
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", v[i]);
      if (i != 0) out += ", ";
      out += buf;
    }
    out += "]";
    put(key, std::move(out));
  }

  /// Writes the report and prints where it went; false (with a message) on
  /// I/O failure so a bench never dies on an unwritable path.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "# failed to open %s for writing\n", path.c_str());
      return false;
    }
    std::fputs("{\n", f);
    for (std::size_t i = 0; i < entries_.size(); ++i)
      std::fprintf(f, "  %s: %s%s\n", quote(entries_[i].first).c_str(),
                   entries_[i].second.c_str(),
                   i + 1 == entries_.size() ? "" : ",");
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }

  void put(const std::string& key, std::string encoded) {
    for (auto& [k, v] : entries_) {
      if (k == key) {
        v = std::move(encoded);
        return;
      }
    }
    entries_.emplace_back(key, std::move(encoded));
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

/// The three Table-I splits, built once and cached on disk.
inline ecg::PaperSplits load_splits(const BenchArgs& args) {
  std::printf("# loading datasets (test scale %.2f; cached in %s)\n",
              args.test_scale,
              ecg::default_cache_dir().string().c_str());
  return ecg::load_paper_splits(args.test_scale);
}

inline core::TwoStepConfig trainer_config(const BenchArgs& args,
                                          std::size_t coefficients) {
  core::TwoStepConfig cfg;
  cfg.coefficients = coefficients;
  cfg.downsample = 4;
  cfg.min_arr = 0.97;
  cfg.ga.population = args.ga_population;
  cfg.ga.generations = args.ga_generations;
  cfg.seed = 0xDA7E2013;
  cfg.threads = args.threads;
  return cfg;
}

/// Smallest alpha_test at which `eval(alpha)` reaches `min_arr` on its
/// dataset, by bisection over the (monotone) ARR-vs-alpha curve; returns the
/// confusion matrix at that operating point. `Eval` maps alpha -> matrix.
template <typename Eval>
core::ConfusionMatrix at_min_arr(const Eval& eval, double min_arr,
                                 double* alpha_out = nullptr) {
  double lo = 0.0, hi = 1.0;
  core::ConfusionMatrix at_lo = eval(0.0);
  if (at_lo.arr() >= min_arr) {
    if (alpha_out != nullptr) *alpha_out = 0.0;
    return at_lo;
  }
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (eval(mid).arr() >= min_arr)
      hi = mid;
    else
      lo = mid;
  }
  if (alpha_out != nullptr) *alpha_out = hi;
  return eval(hi);
}

inline void print_header(const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("==============================================================\n");
}

}  // namespace hbrp::bench
