// Section IV-E reproduction: energy-efficiency improvement of the proposed
// gated system over the always-on baseline.
//
// Baseline: sub-system (2) always delineating, radio transmitting every
// fiducial point of every beat. Proposed: system (3) with RP gating, radio
// transmitting only the R peak for beats classified normal and the full
// fiducial set for flagged beats. The flagged fraction is measured on the
// test set at the ARR >= 97% operating point.
//
// Paper figures: 68% wireless-module saving, 63% bio-signal-analysis
// saving, ~23% total node energy (computation + communication accounting
// for ~34% of a typical WBSN's budget [1]).
#include "bench/common.hpp"
#include "platform/energy.hpp"

int main(int argc, char** argv) {
  using namespace hbrp;
  const auto args = bench::BenchArgs::parse(argc, argv, "energy_study");
  bench::JsonReport report("energy_study");
  const bench::WallTimer timer;
  const auto splits = bench::load_splits(args);
  const core::BeatBatch test_batch = core::BeatBatch::from_dataset(splits.test);
  const core::Executor executor(args.threads);

  const auto cfg = bench::trainer_config(args, 8);
  const core::TwoStepTrainer trainer(splits.training1, splits.training2, cfg);
  const auto trained = trainer.run();
  auto bundle = trained.quantize();
  const auto cm = bench::at_min_arr(
      [&](double alpha) {
        bundle.set_alpha_q16(math::to_q16(alpha));
        return core::evaluate_embedded(bundle, test_batch, &executor);
      },
      0.97);

  platform::ScenarioParams scenario;
  scenario.beat_rate_hz = 74.0 / 60.0;
  scenario.flagged_fraction = cm.flagged_fraction();

  const platform::KernelCosts costs(platform::CycleModel{}, 360);
  const platform::IcyHeartSpec soc;
  const platform::PowerModel power;
  const platform::PayloadModel payload;

  const auto base =
      platform::energy_baseline(costs, scenario, soc, power, payload);
  const auto prop =
      platform::energy_proposed(costs, scenario, soc, power, payload);

  bench::print_header("Section IV-E — energy efficiency improvement");
  std::printf("# flagged fraction on test set: %.3f (ARR %.3f)\n\n",
              scenario.flagged_fraction, cm.arr());
  std::printf("%-22s %14s %14s %10s\n", "component", "baseline (uW)",
              "proposed (uW)", "saving");
  auto row = [](const char* name, double b, double p) {
    std::printf("%-22s %14.1f %14.1f %9.0f%%\n", name, 1e6 * b, 1e6 * p,
                100.0 * platform::relative_saving(b, p));
  };
  row("bio-signal analysis", base.compute_w, prop.compute_w);
  row("wireless module", base.radio_w, prop.radio_w);
  row("rest of node", base.rest_w, prop.rest_w);
  row("total", base.total_w(), prop.total_w());
  std::printf("\npaper: 63%% analysis, 68%% wireless, ~23%% total "
              "(compute+radio share of node: %.0f%%, paper assumes ~34%%)\n",
              100.0 * base.compute_radio_share());

  // Sensitivity: how the total saving depends on the flagged fraction —
  // the knob alpha_test controls in deployment.
  bench::print_header(
      "Sensitivity — total node saving vs flagged fraction");
  std::printf("%-18s %12s %12s %12s\n", "flagged fraction", "compute",
              "wireless", "total");
  for (double f : {0.1, 0.2, 0.3, 0.5, 0.8}) {
    auto s = scenario;
    s.flagged_fraction = f;
    const auto b = platform::energy_baseline(costs, s, soc, power, payload);
    const auto p = platform::energy_proposed(costs, s, soc, power, payload);
    std::printf("%-18.2f %11.0f%% %11.0f%% %11.0f%%\n", f,
                100.0 * platform::relative_saving(b.compute_w, p.compute_w),
                100.0 * platform::relative_saving(b.radio_w, p.radio_w),
                100.0 * platform::relative_saving(b.total_w(), p.total_w()));
  }

  report.set("flagged_fraction", scenario.flagged_fraction);
  report.set("arr", cm.arr());
  report.set("compute_saving_pct",
             100.0 * platform::relative_saving(base.compute_w, prop.compute_w));
  report.set("radio_saving_pct",
             100.0 * platform::relative_saving(base.radio_w, prop.radio_w));
  report.set("total_saving_pct",
             100.0 * platform::relative_saving(base.total_w(), prop.total_w()));
  report.set("test_beats", test_batch.size());
  report.set("threads", executor.threads());
  report.set("wall_s", timer.seconds());
  report.write(args.json_path);
  return 0;
}
