// Extension — multi-lead random-projection classification.
//
// The paper classifies on a single lead and cites its inspiration, a
// multi-lead RP classifier (Bogdanova, Rincon & Atienza, ICASSP 2012 [18]).
// This harness implements that extension: the beat windows of all three
// leads are concatenated (d = 3 x 50 after downsampling) and projected by
// one k x 150 Achlioptas matrix, keeping the NFC unchanged. The comparison
// isolates what the additional leads buy in NDR at the ARR >= 97% operating
// point, against the extra projection-matrix memory.
#include "bench/common.hpp"

namespace {

hbrp::ecg::BeatDataset build_split(const hbrp::ecg::DatasetSpec& spec,
                                   std::size_t leads, std::size_t cap,
                                   std::uint64_t seed) {
  hbrp::ecg::DatasetBuilderConfig cfg;
  cfg.num_leads = leads;
  cfg.max_per_record_per_class = cap;
  cfg.seed = seed;
  return hbrp::ecg::build_dataset(spec, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbrp;
  const auto args =
      bench::BenchArgs::parse(argc, argv, "extension_multilead");
  bench::JsonReport report("extension_multilead");
  const bench::WallTimer timer;

  // Multi-lead windows are not part of the standard cached splits; build
  // moderate-size splits for both arms from identical seeds so the only
  // difference is the number of leads.
  const double s = args.quick ? 0.25 : 1.0;
  const ecg::DatasetSpec ts1_spec{150, 150, 150};
  const ecg::DatasetSpec ts2_spec{
      static_cast<std::size_t>(5000 * s), static_cast<std::size_t>(450 * s),
      static_cast<std::size_t>(550 * s)};
  const ecg::DatasetSpec test_spec{
      static_cast<std::size_t>(12000 * s), static_cast<std::size_t>(1050 * s),
      static_cast<std::size_t>(1300 * s)};

  bench::print_header(
      "Extension — single-lead vs three-lead RP classification (k = 8)");
  std::printf("%-12s %10s %10s %16s\n", "leads", "NDR (%)", "ARR (%)",
              "P matrix bytes");
  for (const std::size_t leads : {std::size_t{1}, std::size_t{3}}) {
    const auto ts1 = build_split(ts1_spec, leads, 20, 601);
    const auto ts2 = build_split(ts2_spec, leads, 100, 602);
    const auto test = build_split(test_spec, leads, 200, 603);

    const auto cfg = bench::trainer_config(args, 8);
    const core::TwoStepTrainer trainer(ts1, ts2, cfg);
    const auto trained = trainer.run();
    const auto proj = core::project_dataset(test, trained.projector);
    const auto cm = bench::at_min_arr(
        [&](double alpha) {
          return core::evaluate(trained.nfc, proj, alpha);
        },
        0.97);
    std::printf("%-12zu %10.2f %10.2f %16zu\n", leads, 100.0 * cm.ndr(),
                100.0 * cm.arr(),
                trained.projector.packed().memory_bytes());
    const std::string p = "leads" + std::to_string(leads) + "_";
    report.set(p + "ndr_pct", 100.0 * cm.ndr());
    report.set(p + "arr_pct", 100.0 * cm.arr());
    report.set(p + "matrix_bytes", trained.projector.packed().memory_bytes());
  }
  std::printf("\n[18] reports multi-lead RP features improving class "
              "separation at the cost of a 3x larger stored matrix.\n");

  report.set("threads", args.threads);
  report.set("wall_s", timer.seconds());
  report.write(args.json_path);
  return 0;
}
