// Model-lifecycle bench: the numbers behind the src/lifecycle CI gate.
//
// Four measurements, all deterministic (fixed trainer config — seeds
// 511/512/513 for model A, 523 for the independently evolved model B —
// and fixed synth/scenario seeds):
//
//   identity  the acceptance criterion: a hot-swap staged mid-stream must
//             split the verdict sequence into an exact prefix of the
//             model-A run and an exact suffix of the model-B run, with
//             dense sequence numbers, for every thread/shard layout.
//             Any divergence fails the bench (exit 1);
//   push      MODEL_PUSH throughput over loopback TCP (announce + parts +
//             ACK round trips, gateway decode + registry admit included),
//             plus a tampered image that must be NACKed Malformed and
//             leave the active version untouched;
//   swap      stage->apply latency on a live pump-driven session: the
//             wall time from stage_swap() to the end of the pump round
//             that applied it (the swap lands at the round's beat
//             boundary), p50/p99 over repeated swaps, and the number of
//             verdicts delivered by the applying round (beats that were
//             in flight when the swap was staged);
//   ab        per-arm AAMI metrics: both candidate models replayed over
//             the standard adversarial scenario suite, the per-arm
//             NDR/ARR/miss/false the fleet A/B split would surface.
//
// --quick trims the swap-latency sample count and the push repetitions;
// the trainer config and the scenario suite are NOT scaled, so quick
// numbers are comparable with the committed BENCH_lifecycle.json baseline.
//
// Output: BENCH_lifecycle.json (scripts/robustness_gate.py lifecycle mode
// compares a fresh run against the committed baseline: the identity and
// corrupt-push booleans are fatal, per-arm NDR/ARR drops are fatal, swap
// latency drift only warns — it is wall-clock on a shared host).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "lifecycle/bundle.hpp"
#include "net/gateway.hpp"
#include "net/push.hpp"
#include "scenario/episodes.hpp"
#include "scenario/runner.hpp"
#include "service/fleet.hpp"

namespace {

using namespace hbrp;

struct TrainedPair {
  core::TrainedClassifier a;
  core::TrainedClassifier b;
  embedded::EmbeddedClassifier clf_a;
  embedded::EmbeddedClassifier clf_b;
  std::shared_ptr<const drift::TrainingCentroids> centroids_a;
  std::shared_ptr<const drift::TrainingCentroids> centroids_b;
};

TrainedPair train_pair(std::size_t threads) {
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 120.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 511;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 80;
  dcfg.seed = 512;
  const auto ts2 = ecg::build_dataset({1200, 120, 150}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 6;
  tcfg.ga.generations = 4;
  tcfg.seed = 513;
  tcfg.threads = threads;
  core::TrainedClassifier a = core::TwoStepTrainer(ts1, ts2, tcfg).run();
  tcfg.seed = 523;  // an independently evolved projection matrix
  core::TrainedClassifier b = core::TwoStepTrainer(ts1, ts2, tcfg).run();
  embedded::EmbeddedClassifier clf_a = a.quantize();
  embedded::EmbeddedClassifier clf_b = b.quantize();
  auto ca = std::make_shared<const drift::TrainingCentroids>(
      core::compute_training_centroids(clf_a, ts1));
  auto cb = std::make_shared<const drift::TrainingCentroids>(
      core::compute_training_centroids(clf_b, ts1));
  return {std::move(a),     std::move(b),  std::move(clf_a),
          std::move(clf_b), std::move(ca), std::move(cb)};
}

std::vector<double> patient_lead(std::uint64_t seed, double seconds) {
  ecg::SynthConfig cfg;
  cfg.profile = ecg::RecordProfile::PvcOccasional;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.seed = seed;
  const auto rec = ecg::generate_record(cfg);
  return {rec.leads[0].begin(), rec.leads[0].end()};
}

struct Tagged {
  std::uint64_t sequence;
  std::uint64_t r_peak;
  std::uint8_t predicted;
  std::uint8_t quality;
  std::uint64_t model_version;
  bool same_beat(const Tagged& o) const {
    return sequence == o.sequence && r_peak == o.r_peak &&
           predicted == o.predicted && quality == o.quality;
  }
};

/// Direct ingest of a double lead on one engine; `mid_hook(engine, id,
/// offered)` runs after every pumped block.
std::vector<Tagged> run_engine(
    const embedded::EmbeddedClassifier& classifier,
    std::span<const double> lead, std::size_t threads, std::size_t shards,
    const std::function<void(service::FleetEngine&, service::SessionId,
                             std::size_t)>& mid_hook = nullptr) {
  service::FleetConfig cfg;
  cfg.threads = threads;
  cfg.shards = shards;
  service::FleetEngine engine(classifier, cfg);
  std::vector<Tagged> out;
  const auto id = engine.open_session([&out](const service::SessionResult& r) {
    out.push_back(Tagged{r.sequence, static_cast<std::uint64_t>(r.beat.r_peak),
                         static_cast<std::uint8_t>(r.beat.predicted),
                         static_cast<std::uint8_t>(r.beat.quality),
                         r.model_version});
  });
  std::size_t off = 0;
  while (off < lead.size()) {
    const std::size_t n = std::min<std::size_t>(2048, lead.size() - off);
    off += engine.offer(*id, lead.subspan(off, n)).accepted;
    engine.pump();
    if (mid_hook) mid_hook(engine, *id, off);
  }
  engine.drain();
  engine.close_session(*id);
  return out;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct GatewayHarness {
  net::GatewayServer gw;
  std::thread thread;
  GatewayHarness(const embedded::EmbeddedClassifier& classifier,
                 net::GatewayConfig cfg)
      : gw(classifier, std::move(cfg)), thread([this] { gw.serve(); }) {}
  ~GatewayHarness() {
    gw.stop();
    thread.join();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, "lifecycle");
  bench::JsonReport report("lifecycle");
  report.set("quick", args.quick);
  report.set("threads", args.threads);

  std::printf("training model pair (fixed config, seeds 511/512/513/523)...\n");
  const TrainedPair trained = train_pair(args.threads);
  bool all_ok = true;

  // --- identity: the swap-split acceptance criterion, per thread layout.
  bool identity_pass = true;
  {
    bench::print_header("hot-swap verdict-stream identity");
    const auto lead = patient_lead(540, 25.0);
    const auto ref_a = run_engine(trained.clf_a, lead, 1, 1);
    const auto ref_b = run_engine(trained.clf_b, lead, 1, 1);
    if (ref_a.empty() || ref_a.size() != ref_b.size()) {
      std::fprintf(stderr, "reference runs disagree on beat count\n");
      identity_pass = false;
    }
    const auto model_b = std::make_shared<const service::SessionModel>(
        service::SessionModel{2, trained.clf_b, trained.centroids_b});
    const std::pair<std::size_t, std::size_t> combos[] = {
        {1, 1}, {2, 2}, {4, 4}};
    for (const auto& [threads, shards] : combos) {
      bool staged = false;
      const auto swapped = run_engine(
          trained.clf_a, lead, threads, shards,
          [&](service::FleetEngine& engine, service::SessionId id,
              std::size_t off) {
            if (!staged && off >= 2048 * 3) {
              engine.stage_swap(id, model_b);
              staged = true;
            }
          });
      bool ok = swapped.size() == ref_a.size();
      std::size_t split = swapped.size();
      for (std::size_t i = 0; ok && i < swapped.size(); ++i) {
        if (split == swapped.size() && swapped[i].model_version == 2u)
          split = i;
        const Tagged& want = i < split ? ref_a[i] : ref_b[i];
        ok = swapped[i].same_beat(want) && swapped[i].sequence == i;
      }
      ok = ok && split > 0 && split < swapped.size();
      std::printf("  t%zus%zu: %zu verdicts, split at %zu  %s\n", threads,
                  shards, swapped.size(), split, ok ? "ok" : "MISMATCH");
      if (!ok) identity_pass = false;
    }
    report.set("lifecycle_identity_pass", identity_pass);
    if (!identity_pass) {
      std::fprintf(stderr, "hot-swap verdict identity FAILED\n");
      all_ok = false;
    }
  }

  // --- push: MODEL_PUSH throughput + a tampered image must be NACKed.
  {
    bench::print_header("MODEL_PUSH over loopback");
    net::GatewayConfig gcfg;
    gcfg.reactors = 1;
    GatewayHarness harness(trained.clf_a, gcfg);
    const int pushes = args.quick ? 4 : 16;
    std::uint64_t version = 1;
    std::size_t bytes = 0;
    bench::WallTimer timer;
    for (int i = 0; i < pushes; ++i) {
      const lifecycle::ModelBundle bundle{
          .version = ++version,
          .model = (i % 2 == 0) ? trained.b : trained.a,
          .centroids =
              (i % 2 == 0) ? *trained.centroids_b : *trained.centroids_a};
      const auto image = lifecycle::encode_bundle(bundle);
      bytes += image.size();
      const auto r = net::push_image(harness.gw.port(), bundle.version, image);
      if (!r.delivered || r.status != net::ModelPushStatus::Ok) {
        std::fprintf(stderr, "push of v%llu failed: %s (status %d)\n",
                     static_cast<unsigned long long>(bundle.version),
                     r.error.c_str(), static_cast<int>(r.status));
        all_ok = false;
      }
    }
    const double secs = timer.seconds();
    const double mb_per_s =
        static_cast<double>(bytes) / (1024.0 * 1024.0) / secs;
    report.set("push_count", pushes);
    report.set("push_bundle_bytes", bytes / static_cast<std::size_t>(pushes));
    report.set("push_mb_per_s", mb_per_s);
    std::printf("  %d pushes, %zu bytes each: %.1f MB/s end-to-end\n",
                pushes, bytes / static_cast<std::size_t>(pushes), mb_per_s);

    const lifecycle::ModelBundle good{.version = version + 1,
                                      .model = trained.b};
    auto tampered = lifecycle::encode_bundle(good);
    tampered[tampered.size() / 2] ^= 0x01u;  // announce digest stays honest
    const auto r =
        net::push_image(harness.gw.port(), good.version, tampered);
    const bool nacked = r.delivered &&
                        r.status == net::ModelPushStatus::Malformed &&
                        harness.gw.active_model_version() == version;
    report.set("lifecycle_corrupt_push_nacked", nacked);
    std::printf("  tampered image: %s\n",
                nacked ? "NACKed Malformed, version held"
                       : "NOT REJECTED (gate failure)");
    if (!nacked) all_ok = false;
  }

  // --- swap: stage->apply latency on a live session, repeated swaps.
  {
    bench::print_header("stage->apply swap latency (pump-driven session)");
    const auto lead = patient_lead(541, 60.0);
    const int target_swaps = args.quick ? 8 : 32;
    service::FleetEngine engine(trained.clf_a, {});
    std::vector<Tagged> out;
    const auto id =
        engine.open_session([&out](const service::SessionResult& r) {
          out.push_back(Tagged{r.sequence, 0, 0, 0, r.model_version});
        });
    std::vector<double> latencies_us;
    std::vector<double> inflight;
    std::uint64_t version = 1;
    std::size_t block = 0;
    const std::span<const double> span(lead);
    // Cycle the lead until enough swaps are sampled: one continuous
    // session, a swap staged every third block.
    while (static_cast<int>(latencies_us.size()) < target_swaps) {
      const std::size_t off = (block * 2048) % span.size();
      const std::size_t n = std::min<std::size_t>(2048, span.size() - off);
      engine.offer(*id, span.subspan(off, n));
      if (block % 3 == 2) {
        ++version;
        const bool to_b = version % 2 == 0;
        engine.stage_swap(
            *id, std::make_shared<const service::SessionModel>(
                     service::SessionModel{
                         version, to_b ? trained.clf_b : trained.clf_a,
                         to_b ? trained.centroids_b : trained.centroids_a}));
        const std::size_t before = out.size();
        bench::WallTimer t;
        engine.pump();  // applies at the round's beat boundary
        latencies_us.push_back(t.seconds() * 1e6);
        inflight.push_back(static_cast<double>(out.size() - before));
      } else {
        engine.pump();
      }
      ++block;
    }
    engine.drain();
    engine.close_session(*id);
    const double p50 = percentile(latencies_us, 0.50);
    const double p99 = percentile(latencies_us, 0.99);
    double mean_inflight = 0.0;
    for (const double x : inflight) mean_inflight += x;
    mean_inflight /= static_cast<double>(inflight.size());
    report.set("swap_count", latencies_us.size());
    report.set("swap_latency_p50_us", p50);
    report.set("swap_latency_p99_us", p99);
    report.set("beats_in_flight_at_swap", mean_inflight);
    std::printf("  %zu swaps: p50 %.0f us, p99 %.0f us, %.1f beats in "
                "flight per applying round\n",
                latencies_us.size(), p50, p99, mean_inflight);
  }

  // --- ab: per-arm AAMI metrics over the standard adversarial suite.
  {
    bench::print_header("A/B arms over the standard scenario suite");
    const auto specs = scenario::standard_scenarios(40.0, 9000);
    struct ArmAgg {
      double ndr = 0, arr = 0, miss = 0, false_rate = 0;
    };
    const embedded::EmbeddedClassifier* clfs[2] = {&trained.clf_a,
                                                   &trained.clf_b};
    ArmAgg agg[2];
    std::printf("  %-22s %9s %9s %9s %9s\n", "scenario", "a_ndr", "a_arr",
                "b_ndr", "b_arr");
    for (const auto& spec : specs) {
      const auto stream = scenario::build_scenario(spec);
      double row[2][2];
      for (int arm = 0; arm < 2; ++arm) {
        const auto verdicts = scenario::run_direct(*clfs[arm], stream);
        const auto score = scenario::score_verdicts(stream, verdicts);
        agg[arm].ndr += score.ndr;
        agg[arm].arr += score.arr;
        agg[arm].miss += score.miss_rate;
        agg[arm].false_rate += score.false_rate;
        row[arm][0] = score.ndr;
        row[arm][1] = score.arr;
      }
      std::printf("  %-22s %9.3f %9.3f %9.3f %9.3f\n", spec.name.c_str(),
                  row[0][0], row[0][1], row[1][0], row[1][1]);
    }
    const double n = static_cast<double>(specs.size());
    report.set("ab_scenarios", specs.size());
    const char* names[2] = {"a", "b"};
    for (int arm = 0; arm < 2; ++arm) {
      char key[40];
      std::snprintf(key, sizeof key, "ab_%s_ndr", names[arm]);
      report.set(key, agg[arm].ndr / n);
      std::snprintf(key, sizeof key, "ab_%s_arr", names[arm]);
      report.set(key, agg[arm].arr / n);
      std::snprintf(key, sizeof key, "ab_%s_miss_rate", names[arm]);
      report.set(key, agg[arm].miss / n);
      std::snprintf(key, sizeof key, "ab_%s_false_rate", names[arm]);
      report.set(key, agg[arm].false_rate / n);
      std::printf("  arm %s mean: ndr %.3f arr %.3f miss %.3f false %.3f\n",
                  names[arm], agg[arm].ndr / n, agg[arm].arr / n,
                  agg[arm].miss / n, agg[arm].false_rate / n);
    }
  }

  report.set("all_ok", all_ok);
  report.write(args.json_path);
  if (!all_ok) {
    std::fprintf(stderr, "lifecycle identity/push gate FAILED\n");
    return 1;
  }
  return 0;
}
