// Kernel micro-benchmarks (google-benchmark): throughput of every stage of
// the embedded chain on the host, plus the storage-vs-execution projection
// ablation (packed decode vs sparse index lists) and the scalar-vs-SIMD
// fuzzification kernels. These do not reproduce a paper table; they document
// the computational profile of this implementation and feed the CI perf gate
// (scripts/perf_gate.py) through BENCH_microkernels.json.
//
// Unlike the table/figure benches this binary is driven by google-benchmark,
// so it takes the usual --benchmark_* flags; the one extra flag is
// --json=PATH (default BENCH_microkernels.json), which writes every
// benchmark's per-iteration CPU time as a flat `<name>_ns_per_op` key plus the
// derived packed-vs-sparse and scalar-vs-SIMD speedup ratios, stamped with
// the machine provenance from bench::JsonReport.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "core/trainer.hpp"
#include "delineation/mmd.hpp"
#include "dsp/morphology.hpp"
#include "dsp/peak_detect.hpp"
#include "dsp/resample.hpp"
#include "dsp/wavelet.hpp"
#include "ecg/synth.hpp"
#include "embedded/int_classifier.hpp"
#include "kernels/cpu.hpp"
#include "kernels/dsp_condition.hpp"
#include "kernels/dsp_peaks.hpp"
#include "kernels/dsp_wavelet.hpp"
#include "kernels/fuzzify.hpp"
#include "kernels/sparse_ternary.hpp"
#include "rp/packed_matrix.hpp"

namespace {

using namespace hbrp;

ecg::Record bench_record(double seconds) {
  ecg::SynthConfig cfg;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.profile = ecg::RecordProfile::PvcOccasional;
  cfg.seed = 99;
  return ecg::generate_record(cfg);
}

const dsp::Signal& conditioned_30s() {
  static const dsp::Signal sig =
      dsp::condition_ecg(bench_record(30.0).leads[0]);
  return sig;
}

void BM_ConditionEcg(benchmark::State& state) {
  const auto rec = bench_record(30.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(dsp::condition_ecg(rec.leads[0]));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rec.leads[0].size()));
}
BENCHMARK(BM_ConditionEcg)->Unit(benchmark::kMillisecond);

void BM_WaveletDecompose(benchmark::State& state) {
  const auto& sig = conditioned_30s();
  for (auto _ : state)
    benchmark::DoNotOptimize(dsp::wavelet_decompose(sig));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_WaveletDecompose)->Unit(benchmark::kMillisecond);

void BM_PeakDetect(benchmark::State& state) {
  const auto& sig = conditioned_30s();
  for (auto _ : state) benchmark::DoNotOptimize(dsp::detect_r_peaks(sig));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_PeakDetect)->Unit(benchmark::kMillisecond);

// --- Block DSP front-end: the SoA kernels the streaming monitor and batch
// pipeline now run (src/kernels/dsp_*), measured through the once-per-process
// scalar/AVX2 dispatch with warm scratch — the steady state of a session.
// Same 30 s input as the per-sample baselines above, so <op>_ns_per_op vs
// <op>Block_ns_per_op is a like-for-like before/after of the refactor.

void BM_ConditionEcgBlock(benchmark::State& state) {
  const auto rec = bench_record(30.0);
  kernels::ConditionScratch scratch;
  dsp::Signal out;
  for (auto _ : state) {
    kernels::condition_ecg_block(rec.leads[0], dsp::FilterConfig{}, scratch,
                                 out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rec.leads[0].size()));
}
BENCHMARK(BM_ConditionEcgBlock)->Unit(benchmark::kMicrosecond);

void BM_WaveletBlock(benchmark::State& state) {
  const auto& sig = conditioned_30s();
  kernels::WaveletScratch scratch;
  dsp::WaveletDecomposition out;
  for (auto _ : state) {
    kernels::wavelet_decompose_block(sig, dsp::kWaveletScales, scratch, out);
    benchmark::DoNotOptimize(out.approx.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_WaveletBlock)->Unit(benchmark::kMicrosecond);

void BM_PeakDetectBlock(benchmark::State& state) {
  const auto& sig = conditioned_30s();
  kernels::PeakScratch scratch;
  std::vector<std::size_t> peaks;
  for (auto _ : state) {
    kernels::detect_r_peaks_block(sig, dsp::PeakDetectorConfig{}, scratch,
                                  peaks);
    benchmark::DoNotOptimize(peaks.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_PeakDetectBlock)->Unit(benchmark::kMicrosecond);

void BM_AdaptiveThresholdDetect(benchmark::State& state) {
  const auto& sig = conditioned_30s();
  kernels::PeakScratch scratch;
  std::vector<std::size_t> peaks;
  dsp::PeakDetectorConfig cfg;
  cfg.kind = dsp::PeakDetectorKind::AdaptiveThreshold;
  for (auto _ : state) {
    kernels::detect_r_peaks_adaptive(sig, cfg, scratch, peaks);
    benchmark::DoNotOptimize(peaks.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_AdaptiveThresholdDetect)->Unit(benchmark::kMicrosecond);

// --- Projection: storage format (packed decode) vs execution format
// (sparse index lists). Same matrix, same input, same int32 results; the
// allocating packed.apply() is kept as the pre-existing baseline and the
// apply_into forms isolate the kernel from the allocator.

struct ProjectionFixture {
  rp::TernaryMatrix dense;
  rp::PackedTernaryMatrix packed;
  kernels::SparseTernary sparse;
  dsp::Signal v;

  explicit ProjectionFixture(std::size_t k)
      : dense([&] {
          math::Rng rng(1);
          return rp::make_achlioptas(k, 50, rng);
        }()),
        packed(dense),
        sparse(kernels::SparseTernary::build(
            dense.rows(), dense.cols(),
            [this](std::size_t r, std::size_t c) { return dense.at(r, c); })),
        v(50) {
    math::Rng rng(7);
    for (auto& x : v) x = static_cast<int>(rng.uniform_int(-1024, 1023));
  }
};

void BM_ProjectionPacked(benchmark::State& state) {
  const ProjectionFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(fx.packed.apply(fx.v));
}
BENCHMARK(BM_ProjectionPacked)->Arg(8)->Arg(16)->Arg(32);

void BM_ProjectionPackedInto(benchmark::State& state) {
  const ProjectionFixture fx(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int32_t> out(fx.dense.rows());
  for (auto _ : state) {
    fx.packed.apply_into(fx.v, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ProjectionPackedInto)->Arg(8)->Arg(16)->Arg(32);

void BM_ProjectionSparseInt(benchmark::State& state) {
  const ProjectionFixture fx(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int32_t> out(fx.dense.rows());
  for (auto _ : state) {
    fx.sparse.apply_into(std::span<const dsp::Sample>(fx.v),
                         std::span<std::int32_t>(out));
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ProjectionSparseInt)->Arg(8)->Arg(16)->Arg(32);

void BM_ProjectionSparseFloat(benchmark::State& state) {
  const ProjectionFixture fx(static_cast<std::size_t>(state.range(0)));
  std::vector<double> out(fx.dense.rows());
  for (auto _ : state) {
    fx.sparse.apply_into(std::span<const dsp::Sample>(fx.v),
                         std::span<double>(out));
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ProjectionSparseFloat)->Arg(8)->Arg(16)->Arg(32);

void BM_ProjectionDense(benchmark::State& state) {
  const ProjectionFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        fx.dense.apply(std::span<const dsp::Sample>(fx.v)));
}
BENCHMARK(BM_ProjectionDense)->Arg(8)->Arg(16)->Arg(32);

// --- Fuzzification: scalar vs AVX2 batch kernels, bound directly (not via
// the dispatcher) so both sides are measurable on one machine. One op = one
// batch of kFuzzifyBeats beats at k = 16 coefficients.

constexpr std::size_t kFuzzifyBeats = 256;
constexpr std::size_t kFuzzifyK = 16;

struct FuzzifyFloatFixture {
  std::vector<double> u;        // [kFuzzifyBeats][kFuzzifyK]
  std::vector<double> centers;  // [3][kFuzzifyK]
  std::vector<double> nhiv;     // [3][kFuzzifyK]
  std::vector<double> out;      // [kFuzzifyBeats][3]

  FuzzifyFloatFixture()
      : u(kFuzzifyBeats * kFuzzifyK),
        centers(3 * kFuzzifyK),
        nhiv(3 * kFuzzifyK),
        out(kFuzzifyBeats * 3) {
    math::Rng rng(11);
    for (auto& x : u) x = rng.normal(0.0, 300.0);
    for (auto& c : centers) c = rng.normal(0.0, 300.0);
    for (auto& h : nhiv) {
      const double sigma = rng.uniform(20.0, 200.0);
      h = -0.5 / (sigma * sigma);
    }
  }
};

void BM_FuzzifyFloatScalar(benchmark::State& state) {
  FuzzifyFloatFixture fx;
  for (auto _ : state) {
    kernels::log_fuzzy_batch_scalar(fx.u.data(), kFuzzifyBeats, kFuzzifyK,
                                    fx.centers.data(), fx.nhiv.data(),
                                    fx.out.data());
    benchmark::DoNotOptimize(fx.out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kFuzzifyBeats));
}
BENCHMARK(BM_FuzzifyFloatScalar);

#if HBRP_KERNELS_X86
void BM_FuzzifyFloatSimd(benchmark::State& state) {
  if (!kernels::cpu_supports_avx2()) {
    state.SkipWithError("AVX2 not available on this host");
    return;
  }
  FuzzifyFloatFixture fx;
  for (auto _ : state) {
    kernels::log_fuzzy_batch_avx2(fx.u.data(), kFuzzifyBeats, kFuzzifyK,
                                  fx.centers.data(), fx.nhiv.data(),
                                  fx.out.data());
    benchmark::DoNotOptimize(fx.out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kFuzzifyBeats));
}
BENCHMARK(BM_FuzzifyFloatSimd);
#endif

// One op = one linearized-MF sweep over a 128-value column (the tile length
// IntClassifier::classify_batch uses).

constexpr std::size_t kMfTile = 128;

struct IntMfFixture {
  std::vector<std::int32_t> x;
  std::vector<std::uint16_t> grades;

  IntMfFixture() : x(kMfTile), grades(kMfTile) {
    math::Rng rng(13);
    for (auto& v : x) v = static_cast<std::int32_t>(rng.normal(0.0, 300.0));
  }
};

void BM_IntMfScalar(benchmark::State& state) {
  IntMfFixture fx;
  for (auto _ : state) {
    kernels::linearized_eval_batch_scalar(42, 100, fx.x.data(), kMfTile,
                                          fx.grades.data());
    benchmark::DoNotOptimize(fx.grades.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMfTile));
}
BENCHMARK(BM_IntMfScalar);

#if HBRP_KERNELS_X86
void BM_IntMfSimd(benchmark::State& state) {
  if (!kernels::cpu_supports_avx2()) {
    state.SkipWithError("AVX2 not available on this host");
    return;
  }
  IntMfFixture fx;
  for (auto _ : state) {
    kernels::linearized_eval_batch_avx2(42, 100, fx.x.data(), kMfTile,
                                        fx.grades.data());
    benchmark::DoNotOptimize(fx.grades.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMfTile));
}
BENCHMARK(BM_IntMfSimd);
#endif

embedded::IntClassifier bench_classifier(std::size_t k,
                                         embedded::MfShape shape) {
  nfc::NeuroFuzzyClassifier nfc(k);
  math::Rng rng(2);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t l = 0; l < 3; ++l)
      nfc.mf(i, l) = {rng.normal(0.0, 300.0), rng.uniform(20.0, 200.0)};
  return embedded::IntClassifier::from_float(nfc, shape);
}

void BM_IntClassify(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cls = bench_classifier(k, embedded::MfShape::Linearized);
  math::Rng rng(3);
  std::vector<std::int32_t> u(k);
  for (auto& x : u) x = static_cast<std::int32_t>(rng.normal(0.0, 300.0));
  for (auto _ : state) benchmark::DoNotOptimize(cls.classify(u, 6554));
}
BENCHMARK(BM_IntClassify)->Arg(8)->Arg(16)->Arg(32);

// One op = one 256-beat classify_batch call with warm scratch (the steady
// state of the engine/fleet batched paths).
void BM_IntClassifyBatch(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cls = bench_classifier(k, embedded::MfShape::Linearized);
  constexpr std::size_t kBeats = 256;
  math::Rng rng(3);
  std::vector<std::int32_t> u(kBeats * k);
  for (auto& x : u) x = static_cast<std::int32_t>(rng.normal(0.0, 300.0));
  std::vector<ecg::BeatClass> out(kBeats);
  embedded::FuzzifyScratch scratch;
  for (auto _ : state) {
    cls.classify_batch(u, kBeats, 6554, out, scratch);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBeats));
}
BENCHMARK(BM_IntClassifyBatch)->Arg(8)->Arg(16)->Arg(32);

void BM_MorphologyDeque(benchmark::State& state) {
  const auto& sig = conditioned_30s();
  const auto len = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(dsp::erode(sig, len));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_MorphologyDeque)->Arg(71)->Arg(151)->Unit(benchmark::kMillisecond);

void BM_DelineateBeat(benchmark::State& state) {
  const auto rec = bench_record(30.0);
  std::vector<dsp::Signal> leads;
  for (const auto& lead : rec.leads) leads.push_back(dsp::condition_ecg(lead));
  const std::size_t peak = rec.beats[rec.beats.size() / 2].sample;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        delineation::delineate_beat_multilead(leads, peak));
}
BENCHMARK(BM_DelineateBeat)->Unit(benchmark::kMicrosecond);

void BM_DownsampleWindow(benchmark::State& state) {
  dsp::Signal window(200);
  math::Rng rng(4);
  for (auto& x : window) x = static_cast<int>(rng.uniform_int(-1024, 1023));
  for (auto _ : state)
    benchmark::DoNotOptimize(dsp::downsample_avg(window, 4));
}
BENCHMARK(BM_DownsampleWindow);

void BM_SynthRecord(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ecg::SynthConfig cfg;
    cfg.duration_s = 10.0;
    cfg.num_leads = 1;
    cfg.seed = seed++;
    benchmark::DoNotOptimize(ecg::generate_record(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          3600);
}
BENCHMARK(BM_SynthRecord)->Unit(benchmark::kMillisecond);

/// "BM_ProjectionSparseInt/16" -> "ProjectionSparseInt_16": the stable key
/// stem used in BENCH_microkernels.json (and matched by perf_gate.py).
std::string json_key_stem(const std::string& name) {
  std::string stem = name;
  if (stem.rfind("BM_", 0) == 0) stem.erase(0, 3);
  for (char& c : stem)
    if (c == '/') c = '_';
  return stem;
}

/// Prints the normal console table AND collects every per-iteration time so
/// main() can emit the flat JSON report the perf gate consumes.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.iterations <= 0)
        continue;
      // CPU time, not wall time: the perf gate compares these across runs,
      // and on a shared/virtualized host wall time absorbs scheduler noise
      // that CPU time does not.
      const double ns_per_op = run.cpu_accumulated_time /
                               static_cast<double>(run.iterations) * 1e9;
      results_.emplace_back(json_key_stem(run.benchmark_name()), ns_per_op);
    }
  }

  const std::vector<std::pair<std::string, double>>& results() const {
    return results_;
  }

  double find(const std::string& stem) const {
    for (const auto& [k, v] : results_)
      if (k == stem) return v;
    return 0.0;
  }

 private:
  std::vector<std::pair<std::string, double>> results_;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off --json=PATH (ours) before handing the rest to google-benchmark,
  // whose own parser rejects flags it does not know.
  std::string json_path = "BENCH_microkernels.json";
  std::vector<char*> bench_argv;
  bench_argv.reserve(static_cast<std::size_t>(argc));
  if (argc > 0) bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      if (argv[i][7] == '\0') {
        std::fprintf(stderr, "%s: empty path in '%s'\n", argv[0], argv[i]);
        return 2;
      }
      json_path = argv[i] + 7;
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data()))
    return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  hbrp::bench::JsonReport report("microkernels");
  for (const auto& [stem, ns] : reporter.results())
    report.set(stem + "_ns_per_op", ns);

  // Derived headline ratios. sparse_speedup_k* is the tentpole number: the
  // same apply_into contract executed from the packed storage format vs the
  // sparse execution format.
  for (const int k : {8, 16, 32}) {
    const std::string suffix = std::to_string(k);
    const double packed = reporter.find("ProjectionPackedInto_" + suffix);
    const double sparse = reporter.find("ProjectionSparseInt_" + suffix);
    if (packed > 0.0 && sparse > 0.0)
      report.set("sparse_speedup_k" + suffix, packed / sparse);
  }
  const double fz_scalar = reporter.find("FuzzifyFloatScalar");
  const double fz_simd = reporter.find("FuzzifyFloatSimd");
  if (fz_scalar > 0.0 && fz_simd > 0.0)
    report.set("fuzzify_simd_speedup", fz_scalar / fz_simd);
  // Block-DSP refactor headline: per-sample operator vs SoA block kernel on
  // the same 30 s signal, and the adaptive fast path vs the full wavelet
  // detector.
  const struct {
    const char* sample;
    const char* block;
    const char* key;
  } dsp_pairs[] = {
      {"ConditionEcg", "ConditionEcgBlock", "condition_block_speedup"},
      {"WaveletDecompose", "WaveletBlock", "wavelet_block_speedup"},
      {"PeakDetect", "PeakDetectBlock", "peak_block_speedup"},
      {"PeakDetectBlock", "AdaptiveThresholdDetect", "adaptive_detect_speedup"},
  };
  for (const auto& p : dsp_pairs) {
    const double sample = reporter.find(p.sample);
    const double block = reporter.find(p.block);
    if (sample > 0.0 && block > 0.0) report.set(p.key, sample / block);
  }
  const double mf_scalar = reporter.find("IntMfScalar");
  const double mf_simd = reporter.find("IntMfSimd");
  if (mf_scalar > 0.0 && mf_simd > 0.0)
    report.set("intmf_simd_speedup", mf_scalar / mf_simd);

  return report.write(json_path) ? 0 : 1;
}
