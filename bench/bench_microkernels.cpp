// Kernel micro-benchmarks (google-benchmark): throughput of every stage of
// the embedded chain on the host, plus the packed-vs-dense projection and
// naive-vs-deque morphology ablations. These do not reproduce a paper
// table; they document the computational profile of this implementation.
#include <benchmark/benchmark.h>

#include "core/trainer.hpp"
#include "delineation/mmd.hpp"
#include "dsp/morphology.hpp"
#include "dsp/peak_detect.hpp"
#include "dsp/resample.hpp"
#include "dsp/wavelet.hpp"
#include "ecg/synth.hpp"
#include "embedded/int_classifier.hpp"
#include "rp/packed_matrix.hpp"

namespace {

using namespace hbrp;

ecg::Record bench_record(double seconds) {
  ecg::SynthConfig cfg;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.profile = ecg::RecordProfile::PvcOccasional;
  cfg.seed = 99;
  return ecg::generate_record(cfg);
}

const dsp::Signal& conditioned_30s() {
  static const dsp::Signal sig =
      dsp::condition_ecg(bench_record(30.0).leads[0]);
  return sig;
}

void BM_ConditionEcg(benchmark::State& state) {
  const auto rec = bench_record(30.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(dsp::condition_ecg(rec.leads[0]));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rec.leads[0].size()));
}
BENCHMARK(BM_ConditionEcg)->Unit(benchmark::kMillisecond);

void BM_WaveletDecompose(benchmark::State& state) {
  const auto& sig = conditioned_30s();
  for (auto _ : state)
    benchmark::DoNotOptimize(dsp::wavelet_decompose(sig));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_WaveletDecompose)->Unit(benchmark::kMillisecond);

void BM_PeakDetect(benchmark::State& state) {
  const auto& sig = conditioned_30s();
  for (auto _ : state) benchmark::DoNotOptimize(dsp::detect_r_peaks(sig));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_PeakDetect)->Unit(benchmark::kMillisecond);

void BM_ProjectionPacked(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  math::Rng rng(1);
  const rp::TernaryMatrix p = rp::make_achlioptas(k, 50, rng);
  const rp::PackedTernaryMatrix packed(p);
  dsp::Signal v(50);
  for (auto& x : v) x = static_cast<int>(rng.uniform_int(-1024, 1023));
  for (auto _ : state) benchmark::DoNotOptimize(packed.apply(v));
}
BENCHMARK(BM_ProjectionPacked)->Arg(8)->Arg(16)->Arg(32);

void BM_ProjectionDense(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  math::Rng rng(1);
  const rp::TernaryMatrix p = rp::make_achlioptas(k, 50, rng);
  dsp::Signal v(50);
  for (auto& x : v) x = static_cast<int>(rng.uniform_int(-1024, 1023));
  for (auto _ : state)
    benchmark::DoNotOptimize(p.apply(std::span<const dsp::Sample>(v)));
}
BENCHMARK(BM_ProjectionDense)->Arg(8)->Arg(16)->Arg(32);

embedded::IntClassifier bench_classifier(std::size_t k,
                                         embedded::MfShape shape) {
  nfc::NeuroFuzzyClassifier nfc(k);
  math::Rng rng(2);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t l = 0; l < 3; ++l)
      nfc.mf(i, l) = {rng.normal(0.0, 300.0), rng.uniform(20.0, 200.0)};
  return embedded::IntClassifier::from_float(nfc, shape);
}

void BM_IntClassify(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cls = bench_classifier(k, embedded::MfShape::Linearized);
  math::Rng rng(3);
  std::vector<std::int32_t> u(k);
  for (auto& x : u) x = static_cast<std::int32_t>(rng.normal(0.0, 300.0));
  for (auto _ : state) benchmark::DoNotOptimize(cls.classify(u, 6554));
}
BENCHMARK(BM_IntClassify)->Arg(8)->Arg(16)->Arg(32);

void BM_MorphologyDeque(benchmark::State& state) {
  const auto& sig = conditioned_30s();
  const auto len = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(dsp::erode(sig, len));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_MorphologyDeque)->Arg(71)->Arg(151)->Unit(benchmark::kMillisecond);

void BM_DelineateBeat(benchmark::State& state) {
  const auto rec = bench_record(30.0);
  std::vector<dsp::Signal> leads;
  for (const auto& lead : rec.leads) leads.push_back(dsp::condition_ecg(lead));
  const std::size_t peak = rec.beats[rec.beats.size() / 2].sample;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        delineation::delineate_beat_multilead(leads, peak));
}
BENCHMARK(BM_DelineateBeat)->Unit(benchmark::kMicrosecond);

void BM_DownsampleWindow(benchmark::State& state) {
  dsp::Signal window(200);
  math::Rng rng(4);
  for (auto& x : window) x = static_cast<int>(rng.uniform_int(-1024, 1023));
  for (auto _ : state)
    benchmark::DoNotOptimize(dsp::downsample_avg(window, 4));
}
BENCHMARK(BM_DownsampleWindow);

void BM_SynthRecord(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ecg::SynthConfig cfg;
    cfg.duration_s = 10.0;
    cfg.num_leads = 1;
    cfg.seed = seed++;
    benchmark::DoNotOptimize(ecg::generate_record(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          3600);
}
BENCHMARK(BM_SynthRecord)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
