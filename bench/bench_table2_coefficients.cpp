// Table II reproduction: Normal Discard Rate (NDR) on the test set for a
// fixed Abnormal Recognition Rate (ARR) of 97%, varying the number of
// projection coefficients k in {8, 16, 32}.
//
// Rows:
//   NDR-PC    — float classifier, Gaussian MFs (no approximation);
//   NDR-WBSN  — embedded integer classifier: linearized MFs, 2-bit packed
//               projection, 4x-downsampled (90 Hz) input;
//   PCA-PC    — float classifier on PCA coefficients (Ceylan & Ozbay 2007)
//               instead of random projections.
// For every cell, alpha_test is swept to the smallest value reaching
// ARR >= 97% on the test set, exactly as the paper fixes the ARR column.
//
// Extra ablation (--downsample-sweep): NDR at k = 8 for downsampling
// factors 1, 2 and 4, quantifying the accuracy cost of the paper's
// matrix-shrinking trick.
#include <vector>

#include "bench/common.hpp"
#include "core/pca_baseline.hpp"

namespace {

struct PaperRow {
  double pc, wbsn, pca;
};
// Paper Table II values per k (for side-by-side printing).
const PaperRow kPaper8 = {93.74, 92.31, 93.66};
const PaperRow kPaper16 = {95.16, 92.53, 95.78};
const PaperRow kPaper32 = {93.05, 93.04, 89.75};

}  // namespace

int main(int argc, char** argv) {
  using namespace hbrp;
  bool downsample_sweep = false;
  const bench::BenchFlag extra[] = {
      {"--downsample-sweep", "also sweep the input downsampling factor",
       &downsample_sweep}};
  const auto args =
      bench::BenchArgs::parse(argc, argv, "table2_coefficients", extra);
  bench::JsonReport report("table2_coefficients");
  const bench::WallTimer timer;

  const auto splits = bench::load_splits(args);
  const core::BeatBatch test_batch = core::BeatBatch::from_dataset(splits.test);
  const core::Executor executor(args.threads);
  constexpr double kMinArr = 0.97;

  bench::print_header(
      "Table II — NDR (%) on test set at fixed ARR >= 97%, vs coefficients");
  std::printf("%-10s %10s %10s %10s\n", "row", "k=8", "k=16", "k=32");

  std::vector<double> ndr_pc, ndr_wbsn, ndr_pca;
  for (const std::size_t k : {std::size_t{8}, std::size_t{16},
                              std::size_t{32}}) {
    const auto cfg = bench::trainer_config(args, k);
    const core::TwoStepTrainer trainer(splits.training1, splits.training2,
                                       cfg);
    const core::TrainedClassifier trained = trainer.run();

    // Float path (NDR-PC).
    const core::ProjectedDataset test_proj =
        core::project_dataset(splits.test, trained.projector);
    const auto float_cm = bench::at_min_arr(
        [&](double alpha) {
          return core::evaluate(trained.nfc, test_proj, alpha, &executor);
        },
        kMinArr);
    ndr_pc.push_back(100.0 * float_cm.ndr());

    // Embedded path (NDR-WBSN): alpha_test tuned independently (Sec. III-B).
    auto bundle = trained.quantize();
    const auto int_cm = bench::at_min_arr(
        [&](double alpha) {
          bundle.set_alpha_q16(math::to_q16(alpha));
          return core::evaluate_embedded(bundle, test_batch, &executor);
        },
        kMinArr);
    ndr_wbsn.push_back(100.0 * int_cm.ndr());

    // PCA baseline (PCA-PC).
    core::PcaBaselineConfig pca_cfg;
    pca_cfg.coefficients = k;
    const auto pca_cls =
        core::train_pca_baseline(splits.training1, splits.training2, pca_cfg);
    const auto pca_proj = core::project_dataset(splits.test, pca_cls);
    const auto pca_cm = bench::at_min_arr(
        [&](double alpha) {
          return core::evaluate(pca_cls.nfc, pca_proj, alpha);
        },
        kMinArr);
    ndr_pca.push_back(100.0 * pca_cm.ndr());

    std::printf("# k=%zu done (GA best fitness %.4f)\n", k,
                trainer.last_history().empty()
                    ? 0.0
                    : trainer.last_history().back());
  }

  auto print_row = [](const char* name, const std::vector<double>& v,
                      double p8, double p16, double p32) {
    std::printf("%-10s %10.2f %10.2f %10.2f   (paper: %.2f / %.2f / %.2f)\n",
                name, v[0], v[1], v[2], p8, p16, p32);
  };
  print_row("NDR-PC", ndr_pc, kPaper8.pc, kPaper16.pc, kPaper32.pc);
  print_row("NDR-WBSN", ndr_wbsn, kPaper8.wbsn, kPaper16.wbsn, kPaper32.wbsn);
  print_row("PCA-PC", ndr_pca, kPaper8.pca, kPaper16.pca, kPaper32.pca);

  std::printf("\nShape checks: (a) small k already reaches NDR > 90%%;\n"
              "(b) 8 -> 32 coefficients brings no tangible gain;\n"
              "(c) PC / WBSN / PCA differ by a few points at most.\n");

  const double ks[] = {8.0, 16.0, 32.0};
  report.set("coefficients", std::span<const double>(ks));
  report.set("ndr_pc_pct", std::span<const double>(ndr_pc));
  report.set("ndr_wbsn_pct", std::span<const double>(ndr_wbsn));
  report.set("ndr_pca_pct", std::span<const double>(ndr_pca));
  report.set("test_beats", test_batch.size());

  if (downsample_sweep) {
    bench::print_header(
        "Ablation — NDR at k = 8 vs input downsampling factor");
    std::printf("%-12s %10s %14s %16s\n", "downsample", "NDR (%)",
                "input samples", "P matrix bytes");
    for (const std::size_t ds : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}}) {
      auto cfg = bench::trainer_config(args, 8);
      cfg.downsample = ds;
      const core::TwoStepTrainer trainer(splits.training1, splits.training2,
                                         cfg);
      const auto trained = trainer.run();
      const auto proj = core::project_dataset(splits.test, trained.projector);
      const auto cm = bench::at_min_arr(
          [&](double alpha) {
            return core::evaluate(trained.nfc, proj, alpha);
          },
          kMinArr);
      std::printf("%-12zu %10.2f %14zu %16zu\n", ds, 100.0 * cm.ndr(),
                  200 / ds, trained.projector.packed().memory_bytes());
      report.set("ndr_downsample_" + std::to_string(ds) + "_pct",
                 100.0 * cm.ndr());
    }
  }

  report.set("threads", executor.threads());
  report.set("wall_s", timer.seconds());
  report.write(args.json_path);
  return 0;
}
