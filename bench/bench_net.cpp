// Net layer bench: loopback gateway throughput and the paper's selective
// transmission radio savings, gated on wire/direct bit-identity.
//
// Two runs over the same ward of synthetic patients (profiles rotate so the
// fleet mixes rhythms), one client thread per node against one
// net::GatewayServer on loopback TCP:
//
//   stream      every node in StreamEverything: all codes cross the wire,
//               the gateway's FleetEngine classifies. Run once per point of
//               a reactor-count axis ({1,2,4}; quick {1,2}) — the gateway
//               shards connections across that many epoll reactor threads.
//               Every run's per-node verdict sequences are *gated* against
//               direct in-process ingest of the identical codes (exit 1 on
//               any divergence) — the wire must be invisible to the
//               results, for any reactor/thread count. Each run also
//               reports the engine's per-phase pump timing
//               (drain/classify/deliver) and the reactors' idle wakeups.
//   selective   every node classifies locally and uploads only
//               pathological/Unknown windows (plus 0-sample Suspect
//               escalations). No identity gate applies (verdicts here are
//               upload confirmations); what is measured is bytes on the
//               wire.
//
// The headline figure is the bytes-on-wire reduction of selective vs
// stream, priced into radio energy via platform::PowerModel — the paper's
// §IV-E transmission-energy argument, measured end to end through real
// sockets. Output: BENCH_net.json.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <span>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/trainer.hpp"
#include "ecg/synth.hpp"
#include "net/client.hpp"
#include "net/gateway.hpp"
#include "platform/energy.hpp"
#include "service/fleet.hpp"

namespace {

using namespace hbrp;

embedded::EmbeddedClassifier train_quick(std::size_t threads) {
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 180.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 311;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 100;
  dcfg.seed = 312;
  const auto ts2 = ecg::build_dataset({2500, 220, 280}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 8;
  tcfg.ga.generations = 6;
  tcfg.seed = 313;
  tcfg.threads = threads;
  return core::TwoStepTrainer(ts1, ts2, tcfg).run().quantize();
}

struct VerdictSig {
  std::uint64_t sequence;
  std::uint64_t r_peak;
  std::uint8_t beat_class;
  std::uint8_t quality;
  bool operator==(const VerdictSig&) const = default;
};

/// Reference path: the same codes offered straight into a FleetEngine
/// session (no sockets), pumped to completion.
std::vector<VerdictSig> direct_ingest(
    const embedded::EmbeddedClassifier& classifier,
    std::span<const dsp::Sample> codes, std::size_t threads) {
  service::FleetConfig cfg;
  cfg.threads = threads;
  service::FleetEngine engine(classifier, cfg);
  std::vector<VerdictSig> out;
  const auto id = engine.open_session([&out](const service::SessionResult& r) {
    out.push_back(VerdictSig{r.sequence,
                             static_cast<std::uint64_t>(r.beat.r_peak),
                             static_cast<std::uint8_t>(r.beat.predicted),
                             static_cast<std::uint8_t>(r.beat.quality)});
  });
  if (!id) {
    std::fprintf(stderr, "direct ingest: open_session refused\n");
    std::exit(1);
  }
  std::size_t off = 0;
  while (off < codes.size()) {
    const std::size_t n = std::min<std::size_t>(1024, codes.size() - off);
    off += engine.offer(*id, codes.subspan(off, n)).accepted;
    engine.pump();
  }
  engine.drain();
  engine.close_session(*id);
  return out;
}

struct RunTotals {
  double wall_s = 0.0;
  std::uint64_t bytes_tx = 0;   // node -> gateway, summed over the ward
  std::uint64_t bytes_rx = 0;   // gateway -> node
  std::uint64_t verdicts = 0;
  std::uint64_t beats_local = 0;
  std::uint64_t beats_uploaded = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t verdict_seq_gaps = 0;
  // Gateway-side pump phase breakdown (summed over shard bodies) and
  // reactor idle accounting for this run.
  double drain_s = 0.0;
  double classify_s = 0.0;
  double deliver_s = 0.0;
  std::uint64_t idle_wakeups = 0;
  std::vector<std::vector<VerdictSig>> per_node;
};

/// One ward replay: every node drives its own client thread against a
/// fresh gateway with `reactors` reactor threads, pushes its code stream
/// in radio-packet chunks, then closes gracefully (finish + drain + BYE +
/// verdict tail).
RunTotals run_ward(const embedded::EmbeddedClassifier& classifier,
                   const std::vector<std::vector<dsp::Sample>>& codes,
                   net::TxPolicy policy, std::size_t reactors) {
  const std::size_t nodes = codes.size();
  RunTotals totals;
  totals.per_node.resize(nodes);

  net::GatewayConfig gcfg;
  gcfg.reactors = reactors;
  gcfg.fleet.max_sessions = nodes;
  net::GatewayServer gateway(classifier, gcfg);
  std::thread serve_thread([&gateway] { gateway.serve(); });

  std::vector<net::TxStats> stats(nodes);
  bench::WallTimer timer;
  {
    std::vector<std::thread> node_threads;
    node_threads.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      node_threads.emplace_back([&, i] {
        net::NodeConfig ncfg;
        ncfg.port = gateway.port();
        ncfg.node_id = static_cast<std::uint32_t>(i);
        ncfg.policy = policy;
        ncfg.heartbeat_interval_ms = 0;  // clean byte accounting
        net::SensorNodeClient client(classifier, ncfg);
        client.set_verdict_sink(
            [&, i](std::uint64_t seq, const net::BeatVerdictMsg& v) {
              totals.per_node[i].push_back(
                  VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
            });
        constexpr std::size_t kPacket = 512;
        const auto& lead = codes[i];
        for (std::size_t off = 0; off < lead.size(); off += kPacket) {
          const std::size_t n = std::min(kPacket, lead.size() - off);
          client.push(std::span<const dsp::Sample>(lead.data() + off, n));
          client.poll_once(0);
        }
        client.close(/*deadline_ms=*/60000);
        stats[i] = client.stats();
      });
    }
    for (auto& t : node_threads) t.join();
  }
  totals.wall_s = timer.seconds();
  gateway.stop();
  serve_thread.join();

  const service::FleetTelemetry& ft = gateway.engine().telemetry();
  totals.drain_s = static_cast<double>(ft.drain_ns.load()) / 1e9;
  totals.classify_s = static_cast<double>(ft.classify_ns.load()) / 1e9;
  totals.deliver_s = static_cast<double>(ft.deliver_ns.load()) / 1e9;
  totals.idle_wakeups = gateway.stats().idle_wakeups.load();

  for (const net::TxStats& s : stats) {
    totals.bytes_tx += s.bytes_tx;
    totals.bytes_rx += s.bytes_rx;
    totals.verdicts += s.verdicts_rx;
    totals.beats_local += s.beats_local;
    totals.beats_uploaded += s.beats_uploaded;
    totals.frames_dropped += s.frames_dropped;
    totals.verdict_seq_gaps += s.verdict_seq_gaps;
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, "net");
  bench::JsonReport report("net");
  bench::print_header(
      "WBSN wire protocol: loopback throughput and selective-transmission "
      "radio savings");

  const std::size_t nodes = args.quick ? 4 : 8;
  const double seconds = args.quick ? 10.0 : 30.0;
  const std::size_t threads = args.threads;

  std::printf("# training classifier (%zu threads)\n", threads);
  const auto classifier = train_quick(threads);

  // The ward: profiles rotate; codes are pre-sanitized exactly like the
  // client's double path so the reference and the wire see identical input.
  const ecg::RecordProfile profiles[] = {
      ecg::RecordProfile::NormalSinus, ecg::RecordProfile::PvcOccasional,
      ecg::RecordProfile::PvcBigeminy, ecg::RecordProfile::Lbbb};
  const core::MonitorConfig mc;
  std::vector<std::vector<dsp::Sample>> codes(nodes);
  std::uint64_t samples_total = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    ecg::SynthConfig scfg;
    scfg.profile = profiles[i % std::size(profiles)];
    scfg.duration_s = seconds;
    scfg.num_leads = 1;
    scfg.seed = 9100 + i;
    const auto rec = ecg::generate_record(scfg);
    dsp::Sample last = 0;
    codes[i].reserve(rec.leads[0].size());
    for (const double x : rec.leads[0])
      codes[i].push_back(
          net::SensorNodeClient::sanitize(x, mc.quality, last, nullptr));
    samples_total += codes[i].size();
  }

  bench::WallTimer total_timer;

  // --- reference: direct in-process ingest per node ----------------------
  std::printf("# direct-ingest reference (%zu nodes)\n", nodes);
  std::vector<std::vector<VerdictSig>> reference(nodes);
  for (std::size_t i = 0; i < nodes; ++i)
    reference[i] = direct_ingest(classifier, codes[i], threads);

  // --- run 1: stream everything across the reactor axis, each point gated
  // on bit-identity against the direct-ingest reference ------------------
  const std::vector<std::size_t> reactor_axis =
      args.quick ? std::vector<std::size_t>{1, 2}
                 : std::vector<std::size_t>{1, 2, 4};
  std::size_t mismatches = 0;
  std::vector<RunTotals> stream_runs;
  for (const std::size_t reactors : reactor_axis) {
    std::printf("# stream-everything ward replay (%zu reactor(s))\n",
                reactors);
    stream_runs.push_back(run_ward(classifier, codes,
                                   net::TxPolicy::StreamEverything, reactors));
    const RunTotals& run = stream_runs.back();
    for (std::size_t i = 0; i < nodes; ++i) {
      if (run.per_node[i] != reference[i]) {
        ++mismatches;
        std::fprintf(stderr,
                     "IDENTITY VIOLATION: %zu reactors, node %zu wire "
                     "verdicts diverge from direct ingest (%zu vs %zu "
                     "beats)\n",
                     reactors, i, run.per_node[i].size(), reference[i].size());
      }
    }
    if (run.frames_dropped != 0 || run.verdict_seq_gaps != 0) {
      ++mismatches;
      std::fprintf(stderr,
                   "lossless replay violated at %zu reactors: %llu drops, "
                   "%llu gaps\n",
                   reactors,
                   static_cast<unsigned long long>(run.frames_dropped),
                   static_cast<unsigned long long>(run.verdict_seq_gaps));
    }
  }
  // The byte/energy headline numbers keep using the single-reactor run so
  // they stay comparable across report generations.
  const RunTotals& stream = stream_runs.front();

  // --- run 2: selective transmission over the same ward ------------------
  std::printf("# selective ward replay\n");
  const RunTotals selective =
      run_ward(classifier, codes, net::TxPolicy::Selective, /*reactors=*/1);

  const platform::PowerModel power;
  const double stream_rate =
      stream.wall_s > 0.0 ? static_cast<double>(samples_total) / stream.wall_s
                          : 0.0;
  const double reduction =
      stream.bytes_tx > 0
          ? 1.0 - static_cast<double>(selective.bytes_tx) /
                      static_cast<double>(stream.bytes_tx)
          : 0.0;
  const double stream_mj = 1e3 * static_cast<double>(stream.bytes_tx) *
                           power.radio_j_per_byte;
  const double selective_mj = 1e3 * static_cast<double>(selective.bytes_tx) *
                              power.radio_j_per_byte;

  std::printf("\n%-22s %12s %12s\n", "", "stream", "selective");
  std::printf("%-22s %12.3f %12.3f\n", "wall (s)", stream.wall_s,
              selective.wall_s);
  std::printf("%-22s %12llu %12llu\n", "bytes node->gateway",
              static_cast<unsigned long long>(stream.bytes_tx),
              static_cast<unsigned long long>(selective.bytes_tx));
  std::printf("%-22s %12llu %12llu\n", "verdicts over wire",
              static_cast<unsigned long long>(stream.verdicts),
              static_cast<unsigned long long>(selective.verdicts));
  std::printf("%-22s %12llu %12llu\n", "beats kept local",
              static_cast<unsigned long long>(stream.beats_local),
              static_cast<unsigned long long>(selective.beats_local));
  std::printf("%-22s %12.3f %12.3f\n", "radio energy (mJ)", stream_mj,
              selective_mj);
  std::printf("\n%9s %10s %14s %10s %12s %11s %13s\n", "reactors", "wall (s)",
              "samples/s", "drain (s)", "classify (s)", "deliver (s)",
              "idle wakeups");
  for (std::size_t ri = 0; ri < reactor_axis.size(); ++ri) {
    const RunTotals& run = stream_runs[ri];
    const double rate =
        run.wall_s > 0.0 ? static_cast<double>(samples_total) / run.wall_s
                         : 0.0;
    std::printf("%9zu %10.3f %14.0f %10.4f %12.4f %11.4f %13llu\n",
                reactor_axis[ri], run.wall_s, rate, run.drain_s,
                run.classify_s, run.deliver_s,
                static_cast<unsigned long long>(run.idle_wakeups));
  }

  std::printf("\ningest throughput (stream): %.0f samples/s over the wire\n",
              stream_rate);
  std::printf("bytes-on-wire reduction: %.1f%% (%.3f mJ saved)\n",
              100.0 * reduction, stream_mj - selective_mj);
  std::printf("bit-identity vs direct ingest: %s\n",
              mismatches == 0 ? "PASS" : "FAIL");

  std::vector<double> r_axis, r_wall, r_rate, r_drain, r_classify, r_deliver,
      r_idle;
  for (std::size_t ri = 0; ri < reactor_axis.size(); ++ri) {
    const RunTotals& run = stream_runs[ri];
    r_axis.push_back(static_cast<double>(reactor_axis[ri]));
    r_wall.push_back(run.wall_s);
    r_rate.push_back(run.wall_s > 0.0
                         ? static_cast<double>(samples_total) / run.wall_s
                         : 0.0);
    r_drain.push_back(run.drain_s);
    r_classify.push_back(run.classify_s);
    r_deliver.push_back(run.deliver_s);
    r_idle.push_back(static_cast<double>(run.idle_wakeups));
  }

  report.set("quick", args.quick);
  report.set("threads", threads);
  report.set("nodes", nodes);
  report.set("stream_seconds", seconds);
  report.set("samples_total", samples_total);
  report.set("stream_wall_s", stream.wall_s);
  report.set("stream_samples_per_s", stream_rate);
  report.set("stream_bytes_tx", stream.bytes_tx);
  report.set("stream_bytes_rx", stream.bytes_rx);
  report.set("stream_verdicts", stream.verdicts);
  report.set("stream_reactors", std::span<const double>(r_axis));
  report.set("stream_reactor_wall_s", std::span<const double>(r_wall));
  report.set("stream_reactor_samples_per_s", std::span<const double>(r_rate));
  report.set("stream_reactor_drain_s", std::span<const double>(r_drain));
  report.set("stream_reactor_classify_s",
             std::span<const double>(r_classify));
  report.set("stream_reactor_deliver_s", std::span<const double>(r_deliver));
  report.set("stream_reactor_idle_wakeups", std::span<const double>(r_idle));
  report.set("selective_wall_s", selective.wall_s);
  report.set("selective_bytes_tx", selective.bytes_tx);
  report.set("selective_beats_local", selective.beats_local);
  report.set("selective_beats_uploaded", selective.beats_uploaded);
  report.set("bytes_reduction", reduction);
  report.set("radio_mj_stream", stream_mj);
  report.set("radio_mj_selective", selective_mj);
  report.set("identity_mismatches", mismatches);
  report.set("identity_pass", mismatches == 0);
  report.set("wall_s", total_timer.seconds());
  report.write(args.json_path);
  return mismatches == 0 ? 0 : 1;
}
