// Figure 4 reproduction: linear approximation of the Gaussian membership
// function versus the simpler triangular interpolation.
//
// Prints the three curves over [-4.7 sigma, +4.7 sigma] (= [-2S, 2S] with
// S = 2.35 sigma, the range plotted in the paper) plus approximation-error
// summaries, including the property the paper calls out: the linearized MF
// stays positive out to 4S, so fuzzy products rarely collapse to zero.
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "embedded/linear_mf.hpp"

int main(int argc, char** argv) {
  using namespace hbrp;
  const auto args = bench::BenchArgs::parse(argc, argv, "fig4_mf_approx");
  bench::JsonReport report("fig4_mf_approx");
  const bench::WallTimer timer;
  bench::print_header(
      "Figure 4 — Gaussian vs linearized vs triangular MF shapes");

  // A representative trained MF: centre 0, sigma chosen so the integer grid
  // is fine (the comparison is shape-level, sigma only sets the x-scale).
  const double sigma = 100.0;
  const auto lin = embedded::LinearizedMF::from_gaussian(0.0, sigma);
  const auto tri = embedded::TriangularMF::from_gaussian(0.0, sigma);

  std::printf("%10s %12s %12s %12s\n", "x/sigma", "gaussian", "linearized",
              "triangular");
  double lin_max_err = 0.0, lin_mean_err = 0.0;
  double tri_max_err = 0.0, tri_mean_err = 0.0;
  std::size_t samples = 0;
  for (double z = -4.7; z <= 4.7 + 1e-9; z += 0.235) {
    const double x = z * sigma;
    const double gauss = std::exp(-0.5 * z * z);
    const double l =
        static_cast<double>(lin.eval(static_cast<std::int32_t>(x))) / 65535.0;
    const double t =
        static_cast<double>(tri.eval(static_cast<std::int32_t>(x))) / 65535.0;
    std::printf("%10.2f %12.5f %12.5f %12.5f\n", z, gauss, l, t);
    lin_max_err = std::max(lin_max_err, std::abs(l - gauss));
    tri_max_err = std::max(tri_max_err, std::abs(t - gauss));
    lin_mean_err += std::abs(l - gauss);
    tri_mean_err += std::abs(t - gauss);
    ++samples;
  }
  lin_mean_err /= static_cast<double>(samples);
  tri_mean_err /= static_cast<double>(samples);

  std::printf("\napproximation error vs the Gaussian over [-4.7s, 4.7s]:\n");
  std::printf("  linearized: mean %.4f  max %.4f\n", lin_mean_err,
              lin_max_err);
  std::printf("  triangular: mean %.4f  max %.4f\n", tri_mean_err,
              tri_max_err);

  // The "positive in a large range" property.
  const auto s = static_cast<std::int32_t>(2.35 * sigma);
  std::printf("\nsupport: linearized positive out to |x - c| < 4S "
              "(grade at 3S = %u), triangular zero beyond 2S "
              "(grade at 3S = %u)\n",
              lin.eval(3 * s), tri.eval(3 * s));

  report.set("linearized_mean_err", lin_mean_err);
  report.set("linearized_max_err", lin_max_err);
  report.set("triangular_mean_err", tri_mean_err);
  report.set("triangular_max_err", tri_max_err);
  report.set("linearized_grade_at_3s", lin.eval(3 * s));
  report.set("triangular_grade_at_3s", tri.eval(3 * s));
  report.set("threads", args.threads);
  report.set("wall_s", timer.seconds());
  report.write(args.json_path);
  return 0;
}
