// Drift-tracker bench: the numbers behind the src/drift CI gate.
//
// Four measurements, all deterministic (fixed trainer config — seeds
// 311/312/313, same as bench_scenarios — and fixed scenario seeds):
//
//   cost       DriftTracker::observe() nanoseconds per beat on real
//              projections, plus the platform cycle model's charge for the
//              same update (platform::KernelCosts::drift_update_per_beat)
//              so the measured and modelled costs sit side by side;
//   latency    detection latency of the morphology_shift scenario as a
//              beats-from-episode-onset-to-alarm curve over shift
//              magnitudes — the headline "how many beats of a novel
//              morphology before the fleet hears about it";
//   falsealarm replay of every OTHER standard scenario (artefact storms,
//              electrode drops, VT, clock skew, ... plus the clean ward)
//              through the same tracker: none may alarm. The false-alarm
//              rate and the worst windowed score are recorded and gated;
//   identity   FleetEngine drift state digest, 1 thread/1 shard vs
//              4 threads/4 shards — must be bit-identical (exit 1).
//
// --quick trims the magnitude curve to {1.0} and the false-alarm sweep to
// its first three scenarios; the trainer config is NOT scaled, so quick
// numbers are comparable with the committed BENCH_drift.json baseline.
//
// Output: BENCH_drift.json (scripts/robustness_gate.py compares a fresh
// run against the committed baseline: detection latency must not regress,
// the false-alarm rate must stay zero, drift_identity is fatal).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "bench/common.hpp"
#include "core/trainer.hpp"
#include "drift/tracker.hpp"
#include "ecg/dataset.hpp"
#include "net/client.hpp"
#include "platform/cycles.hpp"
#include "scenario/episodes.hpp"
#include "service/fleet.hpp"

namespace {

using namespace hbrp;

constexpr double kDurationS = 90.0;
constexpr double kOnsetS = 20.0;
constexpr std::uint64_t kSeed = 9100;

struct Trained {
  embedded::EmbeddedClassifier classifier;
  std::shared_ptr<const drift::TrainingCentroids> centroids;
};

Trained train_fixed(std::size_t threads) {
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 180.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 311;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 100;
  dcfg.seed = 312;
  const auto ts2 = ecg::build_dataset({2500, 220, 280}, dcfg);
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 8;
  tcfg.ga.generations = 6;
  tcfg.seed = 313;
  tcfg.threads = threads;
  embedded::EmbeddedClassifier clf =
      core::TwoStepTrainer(ts1, ts2, tcfg).run().quantize();
  auto tc = std::make_shared<const drift::TrainingCentroids>(
      core::compute_training_centroids(clf, ts1));
  return {std::move(clf), std::move(tc)};
}

scenario::ScenarioSpec shift_spec(double magnitude) {
  scenario::ScenarioSpec spec;
  spec.name = "morphology_shift_bench";
  spec.seed = kSeed;
  spec.duration_s = kDurationS;
  spec.episodes.push_back({scenario::EpisodeKind::MorphologyShift, kOnsetS,
                           kDurationS - kOnsetS - 10.0, magnitude});
  return spec;
}

struct Replay {
  std::uint64_t beats = 0;
  std::uint64_t novel = 0;
  std::uint64_t alarms = 0;
  double max_score = 0.0;
  /// Beats observed from the first beat at/after the episode onset until
  /// the alarm first latched; -1 when the alarm never fired.
  std::ptrdiff_t detect_beats = -1;
};

/// Replays one scenario through a streaming monitor with an attached
/// tracker, recording alarm onset relative to `onset_s` (pass 0 for
/// scenarios without a shift episode).
Replay replay(const Trained& t, const scenario::ScenarioSpec& spec,
              double onset_s) {
  const auto stream = scenario::build_scenario(spec);
  core::StreamingBeatMonitor monitor(t.classifier);
  drift::DriftTracker tracker(*t.centroids);
  monitor.set_drift_tracker(&tracker);
  const auto onset_sample =
      static_cast<std::size_t>(onset_s * stream.fs_hz);
  Replay r;
  std::uint64_t beats_before_onset = 0;
  std::uint64_t alarm_beat = 0;
  const core::BeatSink sink = [&](const core::MonitorBeat& b) {
    if (b.r_peak < onset_sample) beats_before_onset = tracker.beats();
    r.max_score = std::max(r.max_score, tracker.score());
    if (alarm_beat == 0 && tracker.alarm_active())
      alarm_beat = tracker.beats();
  };
  monitor.push_block(std::span<const double>(stream.samples), sink);
  monitor.flush(sink);
  r.beats = tracker.beats();
  r.novel = tracker.novel_beats();
  r.alarms = tracker.alarms();
  if (alarm_beat != 0)
    r.detect_beats =
        static_cast<std::ptrdiff_t>(alarm_beat - beats_before_onset);
  return r;
}

/// Harvests every classified projection of one scenario replay.
std::vector<std::int32_t> harvest_projections(const Trained& t,
                                              const scenario::ScenarioSpec& s,
                                              std::size_t k) {
  const auto stream = scenario::build_scenario(s);
  core::StreamingBeatMonitor monitor(t.classifier);
  embedded::ClassifyScratch scratch;
  std::vector<std::int32_t> us;
  const core::PendingBeatSink sink = [&](const core::PendingBeat& pb) {
    if (!pb.needs_classification) return;
    (void)t.classifier.classify_window(pb.window, scratch);
    us.insert(us.end(), scratch.u.begin(), scratch.u.end());
  };
  monitor.push_block(std::span<const double>(stream.samples), sink);
  monitor.flush(sink);
  (void)k;
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, "drift");
  bench::JsonReport report("drift");
  report.set("quick", args.quick);
  report.set("threads", args.threads);

  std::printf("training classifier (fixed config, seeds 311/312/313)...\n");
  const Trained trained = train_fixed(args.threads);
  const std::size_t k = trained.centroids->coefficients;
  report.set("coefficients", k);
  report.set("centroids", trained.centroids->centroids.size());
  report.set("scale", trained.centroids->scale);

  bool all_ok = true;

  // --- cost: measured ns/beat next to the platform model's cycles/beat.
  {
    const auto us = harvest_projections(trained, shift_spec(1.0), k);
    const std::size_t n = us.size() / k;
    drift::DriftTracker tracker(*trained.centroids);
    constexpr int kReps = 2000;
    bench::WallTimer timer;
    for (int rep = 0; rep < kReps; ++rep)
      for (std::size_t i = 0; i < n; ++i)
        tracker.observe(
            std::span<const std::int32_t>(us.data() + i * k, k));
    const double ns =
        timer.seconds() * 1e9 / (static_cast<double>(kReps) * n);
    report.set("drift_observe_beats", n);
    report.set("drift_observe_ns", ns);

    const platform::KernelCosts costs(platform::CycleModel{}, 360);
    const drift::DriftConfig dcfg;
    const double cycles = costs.drift_update_per_beat(k, dcfg.max_clusters);
    report.set("drift_model_cycles_per_beat", cycles);
    // At the paper's 6 MHz core and test-set beat rate, the duty-cycle
    // increment tracking adds to sub-system (1).
    platform::ScenarioParams params;
    params.coefficients = k;
    params.drift_clusters = dcfg.max_clusters;
    const platform::IcyHeartSpec spec;
    const double duty_with =
        platform::load_subsystem1(costs, params).duty_cycle(spec);
    params.drift_clusters = 0;
    const double duty_without =
        platform::load_subsystem1(costs, params).duty_cycle(spec);
    report.set("drift_model_duty_delta", duty_with - duty_without);
    std::printf("observe(): %.1f ns/beat measured, %.0f cycles/beat "
                "modelled (+%.5f duty at 6 MHz)\n",
                ns, cycles, duty_with - duty_without);
  }

  // --- latency: beats from episode onset to alarm, per shift magnitude.
  {
    std::vector<double> magnitudes = {0.75, 1.0, 1.5};
    if (args.quick) magnitudes = {1.0};
    std::printf("\n%-10s %7s %7s %7s %9s %7s\n", "magnitude", "beats",
                "novel", "alarms", "maxscore", "detect");
    for (const double m : magnitudes) {
      const Replay r = replay(trained, shift_spec(m), kOnsetS);
      char key[40];
      std::snprintf(key, sizeof key, "drift_detect_beats_m%03d",
                    static_cast<int>(m * 100.0 + 0.5));
      report.set(key, static_cast<std::int64_t>(r.detect_beats));
      std::printf("%-10.2f %7llu %7llu %7llu %9.3f %7td\n", m,
                  static_cast<unsigned long long>(r.beats),
                  static_cast<unsigned long long>(r.novel),
                  static_cast<unsigned long long>(r.alarms), r.max_score,
                  r.detect_beats);
      if (m >= 1.0 && r.detect_beats < 0) {
        std::fprintf(stderr,
                     "magnitude %.2f: morphology shift never alarmed\n", m);
        all_ok = false;
      }
    }
  }

  // --- falsealarm: every other standard scenario must stay silent.
  {
    auto specs = scenario::standard_scenarios(40.0, 9000);
    std::erase_if(specs, [](const scenario::ScenarioSpec& s) {
      return s.name == "morphology_shift";
    });
    if (args.quick) specs.resize(3);
    std::size_t alarmed = 0;
    double worst_score = 0.0;
    std::printf("\n%-20s %7s %7s %9s\n", "scenario", "beats", "alarms",
                "maxscore");
    for (const auto& spec : specs) {
      const Replay r = replay(trained, spec, 0.0);
      worst_score = std::max(worst_score, r.max_score);
      if (r.alarms != 0) {
        ++alarmed;
        std::fprintf(stderr, "%s: spurious drift alarm\n",
                     spec.name.c_str());
      }
      std::printf("%-20s %7llu %7llu %9.3f\n", spec.name.c_str(),
                  static_cast<unsigned long long>(r.beats),
                  static_cast<unsigned long long>(r.alarms), r.max_score);
    }
    const double rate =
        static_cast<double>(alarmed) / static_cast<double>(specs.size());
    report.set("drift_false_alarm_scenarios", specs.size());
    report.set("drift_false_alarm_rate", rate);
    report.set("drift_max_clean_score", worst_score);
    if (alarmed != 0) all_ok = false;
  }

  // --- identity: fleet drift state must not depend on the thread layout.
  {
    const auto stream = scenario::build_scenario(shift_spec(1.0));
    std::vector<dsp::Sample> codes;
    codes.reserve(stream.samples.size());
    const core::MonitorConfig mc;
    dsp::Sample last = 0;
    for (const double x : stream.samples)
      codes.push_back(
          net::SensorNodeClient::sanitize(x, mc.quality, last, nullptr));
    auto digest = [&](std::size_t threads, std::size_t shards) {
      service::FleetConfig cfg;
      cfg.threads = threads;
      cfg.shards = shards;
      cfg.session.drift_centroids = trained.centroids;
      service::FleetEngine engine(trained.classifier, cfg);
      const auto id =
          engine.open_session([](const service::SessionResult&) {});
      std::size_t off = 0;
      const std::span<const dsp::Sample> all(codes);
      while (off < codes.size()) {
        const std::size_t n =
            std::min<std::size_t>(2048, codes.size() - off);
        off += engine.offer(*id, all.subspan(off, n)).accepted;
        engine.pump();
      }
      engine.drain();
      const std::uint64_t d = engine.session_drift(*id)->state_digest();
      engine.close_session(*id);
      return d;
    };
    const std::uint64_t d1 = digest(1, 1);
    const std::uint64_t d4 = digest(4, 4);
    const bool identity = d1 == d4;
    report.set("drift_identity", identity);
    std::printf("\nfleet drift digest t1s1=%016llx t4s4=%016llx %s\n",
                static_cast<unsigned long long>(d1),
                static_cast<unsigned long long>(d4),
                identity ? "ok" : "MISMATCH");
    if (!identity) {
      std::fprintf(stderr, "drift state diverged across thread layouts\n");
      all_ok = false;
    }
  }

  report.set("all_ok", all_ok);
  report.write(args.json_path);
  std::printf("\nwrote %s\n", args.json_path.c_str());
  if (!all_ok) {
    std::fprintf(stderr, "drift detection/identity gate FAILED\n");
    return 1;
  }
  return 0;
}
