// Ablation — the value of each stage of the NFC training recipe.
//
//   1. SCG vs plain gradient descent (the standard NFC trainer [9]) on the
//      identical cross-entropy objective: loss reached per iteration
//      budget. This backs the paper's choice of Moller's algorithm [11][12].
//   2. Statistics initialization alone vs full SCG refinement: NDR on
//      training set 2 at the ARR >= 97% constraint.
#include "bench/common.hpp"
#include "nfc/objective.hpp"
#include "nfc/train.hpp"
#include "opt/gd.hpp"
#include "opt/scg.hpp"

int main(int argc, char** argv) {
  using namespace hbrp;
  const auto args = bench::BenchArgs::parse(argc, argv, "ablation_training");
  bench::JsonReport report("ablation_training");
  const bench::WallTimer timer;
  const auto splits = bench::load_splits(args);

  // One fixed random projection: the comparison is about the NFC trainer.
  math::Rng rng(1234);
  const rp::BeatProjector projector(rp::make_achlioptas(8, 50, rng), 4);
  const auto d1 = core::project_dataset(splits.training1, projector);
  const auto d2 = core::project_dataset(splits.training2, projector);

  bench::print_header(
      "Ablation — SCG vs gradient descent on the NFC cross-entropy");
  std::printf("%-14s %12s %12s %12s\n", "budget (iters)", "SCG loss",
              "GD loss", "init loss");
  for (const int budget : {10, 30, 100, 300}) {
    // SCG.
    nfc::NeuroFuzzyClassifier scg_nfc(8);
    nfc::init_from_statistics(scg_nfc, d1.u, d1.labels);
    const double init_loss = nfc::cross_entropy(scg_nfc, d1.u, d1.labels);
    {
      nfc::TrainingObjective obj(scg_nfc, d1.u, d1.labels, 0.0, {});
      auto params = scg_nfc.to_params();
      opt::ScgOptions o;
      o.max_iterations = budget;
      opt::minimize_scg(obj, params, o);
      scg_nfc.from_params(params);
    }
    // GD on the identical objective and start point.
    nfc::NeuroFuzzyClassifier gd_nfc(8);
    nfc::init_from_statistics(gd_nfc, d1.u, d1.labels);
    {
      nfc::TrainingObjective obj(gd_nfc, d1.u, d1.labels, 0.0, {});
      auto params = gd_nfc.to_params();
      opt::GdOptions o;
      o.max_iterations = budget;
      opt::minimize_gd(obj, params, o);
      gd_nfc.from_params(params);
    }
    std::printf("%-14d %12.5f %12.5f %12.5f\n", budget,
                nfc::cross_entropy(scg_nfc, d1.u, d1.labels),
                nfc::cross_entropy(gd_nfc, d1.u, d1.labels), init_loss);
  }

  bench::print_header(
      "Ablation — statistics init alone vs SCG refinement (on ts2)");
  auto score = [&](const nfc::NeuroFuzzyClassifier& classifier) {
    const auto cm = bench::at_min_arr(
        [&](double alpha) { return core::evaluate(classifier, d2, alpha); },
        0.97);
    return cm;
  };
  nfc::NeuroFuzzyClassifier init_only(8);
  nfc::init_from_statistics(init_only, d1.u, d1.labels);
  const auto cm_init = score(init_only);

  nfc::NeuroFuzzyClassifier refined(8);
  nfc::train(refined, d1.u, d1.labels);
  const auto cm_scg = score(refined);

  std::printf("%-22s %10s %10s\n", "NFC variant", "NDR (%)", "ARR (%)");
  std::printf("%-22s %10.2f %10.2f\n", "statistics init only",
              100.0 * cm_init.ndr(), 100.0 * cm_init.arr());
  std::printf("%-22s %10.2f %10.2f\n", "init + SCG",
              100.0 * cm_scg.ndr(), 100.0 * cm_scg.arr());

  report.set("init_only_ndr_pct", 100.0 * cm_init.ndr());
  report.set("init_only_arr_pct", 100.0 * cm_init.arr());
  report.set("init_scg_ndr_pct", 100.0 * cm_scg.ndr());
  report.set("init_scg_arr_pct", 100.0 * cm_scg.arr());
  report.set("threads", args.threads);
  report.set("wall_s", timer.seconds());
  report.write(args.json_path);
  return 0;
}
