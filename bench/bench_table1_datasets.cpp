// Table I reproduction: size and composition of the two training sets and
// the test set, plus provenance statistics of the synthetic substitute
// (records generated, peak-detector quality during extraction).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hbrp;
  const auto args = bench::BenchArgs::parse(argc, argv, "table1_datasets");
  bench::JsonReport report("table1_datasets");
  const bench::WallTimer timer;
  const auto splits = bench::load_splits(args);

  bench::print_header(
      "Table I — size and composition of the dataset splits");
  std::printf("%-16s %8s %8s %8s %10s   (paper)\n", "split", "N", "V", "L",
              "total");
  auto row = [&report](const char* name, const std::string& key,
                       const ecg::BeatDataset& ds,
                       const ecg::DatasetSpec& paper) {
    const auto c = ds.counts();
    std::printf("%-16s %8zu %8zu %8zu %10zu   (%zu/%zu/%zu = %zu)\n", name,
                c.n, c.v, c.l, ds.beats.size(), paper.n, paper.v, paper.l,
                paper.total());
    report.set(key + "_n", c.n);
    report.set(key + "_v", c.v);
    report.set(key + "_l", c.l);
  };
  row("training set 1", "ts1", splits.training1, ecg::kTrainingSet1);
  row("training set 2", "ts2", splits.training2, ecg::kTrainingSet2);
  row("test set", "test", splits.test, ecg::kTestSet);

  std::printf("\nwindow: %zu samples before + %zu after the R peak at %d Hz\n",
              splits.test.window_before, splits.test.window_after,
              splits.test.fs_hz);
  if (args.test_scale != 1.0)
    std::printf("note: test set scaled by %.2f (use default for the full "
                "89012 beats)\n",
                args.test_scale);

  report.set("test_scale", args.test_scale);
  report.set("threads", args.threads);
  report.set("wall_s", timer.seconds());
  report.write(args.json_path);
  return 0;
}
