file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_study.dir/bench_energy_study.cpp.o"
  "CMakeFiles/bench_energy_study.dir/bench_energy_study.cpp.o.d"
  "bench_energy_study"
  "bench_energy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
