# Empty dependencies file for bench_energy_study.
# This may be replaced when dependencies are built.
