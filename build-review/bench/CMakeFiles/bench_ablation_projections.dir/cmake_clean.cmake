file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_projections.dir/bench_ablation_projections.cpp.o"
  "CMakeFiles/bench_ablation_projections.dir/bench_ablation_projections.cpp.o.d"
  "bench_ablation_projections"
  "bench_ablation_projections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_projections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
