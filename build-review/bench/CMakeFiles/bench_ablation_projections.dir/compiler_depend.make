# Empty compiler generated dependencies file for bench_ablation_projections.
# This may be replaced when dependencies are built.
