# Empty dependencies file for bench_extension_multilead.
# This may be replaced when dependencies are built.
