file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_multilead.dir/bench_extension_multilead.cpp.o"
  "CMakeFiles/bench_extension_multilead.dir/bench_extension_multilead.cpp.o.d"
  "bench_extension_multilead"
  "bench_extension_multilead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_multilead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
