file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_coefficients.dir/bench_table2_coefficients.cpp.o"
  "CMakeFiles/bench_table2_coefficients.dir/bench_table2_coefficients.cpp.o.d"
  "bench_table2_coefficients"
  "bench_table2_coefficients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_coefficients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
