# Empty dependencies file for bench_table2_coefficients.
# This may be replaced when dependencies are built.
