
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_mf_approx.cpp" "bench/CMakeFiles/bench_fig4_mf_approx.dir/bench_fig4_mf_approx.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_mf_approx.dir/bench_fig4_mf_approx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/hbrp_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/platform/CMakeFiles/hbrp_platform.dir/DependInfo.cmake"
  "/root/repo/build-review/src/embedded/CMakeFiles/hbrp_embedded.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nfc/CMakeFiles/hbrp_nfc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/opt/CMakeFiles/hbrp_opt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rp/CMakeFiles/hbrp_rp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/delineation/CMakeFiles/hbrp_delineation.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ecg/CMakeFiles/hbrp_ecg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hbrp_executor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/hbrp_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/math/CMakeFiles/hbrp_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
