# Empty compiler generated dependencies file for bench_fig4_mf_approx.
# This may be replaced when dependencies are built.
