file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mf_approx.dir/bench_fig4_mf_approx.cpp.o"
  "CMakeFiles/bench_fig4_mf_approx.dir/bench_fig4_mf_approx.cpp.o.d"
  "bench_fig4_mf_approx"
  "bench_fig4_mf_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mf_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
