file(REMOVE_RECURSE
  "CMakeFiles/test_ecg_types.dir/test_ecg_types.cpp.o"
  "CMakeFiles/test_ecg_types.dir/test_ecg_types.cpp.o.d"
  "test_ecg_types"
  "test_ecg_types.pdb"
  "test_ecg_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecg_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
