# Empty dependencies file for test_dsp_streaming.
# This may be replaced when dependencies are built.
