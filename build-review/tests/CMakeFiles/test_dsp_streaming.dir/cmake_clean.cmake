file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_streaming.dir/test_dsp_streaming.cpp.o"
  "CMakeFiles/test_dsp_streaming.dir/test_dsp_streaming.cpp.o.d"
  "test_dsp_streaming"
  "test_dsp_streaming.pdb"
  "test_dsp_streaming[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
