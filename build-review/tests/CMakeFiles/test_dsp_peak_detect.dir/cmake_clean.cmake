file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_peak_detect.dir/test_dsp_peak_detect.cpp.o"
  "CMakeFiles/test_dsp_peak_detect.dir/test_dsp_peak_detect.cpp.o.d"
  "test_dsp_peak_detect"
  "test_dsp_peak_detect.pdb"
  "test_dsp_peak_detect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_peak_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
