# Empty dependencies file for test_dsp_peak_detect.
# This may be replaced when dependencies are built.
