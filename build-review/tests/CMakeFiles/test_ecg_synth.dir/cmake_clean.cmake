file(REMOVE_RECURSE
  "CMakeFiles/test_ecg_synth.dir/test_ecg_synth.cpp.o"
  "CMakeFiles/test_ecg_synth.dir/test_ecg_synth.cpp.o.d"
  "test_ecg_synth"
  "test_ecg_synth.pdb"
  "test_ecg_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecg_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
