# Empty compiler generated dependencies file for test_core_metrics.
# This may be replaced when dependencies are built.
