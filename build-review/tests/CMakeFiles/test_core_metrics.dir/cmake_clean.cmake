file(REMOVE_RECURSE
  "CMakeFiles/test_core_metrics.dir/test_core_metrics.cpp.o"
  "CMakeFiles/test_core_metrics.dir/test_core_metrics.cpp.o.d"
  "test_core_metrics"
  "test_core_metrics.pdb"
  "test_core_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
