# Empty dependencies file for test_integration_full.
# This may be replaced when dependencies are built.
