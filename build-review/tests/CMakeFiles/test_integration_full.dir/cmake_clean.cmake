file(REMOVE_RECURSE
  "CMakeFiles/test_integration_full.dir/test_integration_full.cpp.o"
  "CMakeFiles/test_integration_full.dir/test_integration_full.cpp.o.d"
  "test_integration_full"
  "test_integration_full.pdb"
  "test_integration_full[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
