file(REMOVE_RECURSE
  "CMakeFiles/test_math_fixed.dir/test_math_fixed.cpp.o"
  "CMakeFiles/test_math_fixed.dir/test_math_fixed.cpp.o.d"
  "test_math_fixed"
  "test_math_fixed.pdb"
  "test_math_fixed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
