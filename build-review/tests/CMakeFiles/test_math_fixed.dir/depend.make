# Empty dependencies file for test_math_fixed.
# This may be replaced when dependencies are built.
