# Empty compiler generated dependencies file for test_embedded.
# This may be replaced when dependencies are built.
