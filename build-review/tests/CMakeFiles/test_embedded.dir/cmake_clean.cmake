file(REMOVE_RECURSE
  "CMakeFiles/test_embedded.dir/test_embedded.cpp.o"
  "CMakeFiles/test_embedded.dir/test_embedded.cpp.o.d"
  "test_embedded"
  "test_embedded.pdb"
  "test_embedded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embedded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
