file(REMOVE_RECURSE
  "CMakeFiles/test_delineation.dir/test_delineation.cpp.o"
  "CMakeFiles/test_delineation.dir/test_delineation.cpp.o.d"
  "test_delineation"
  "test_delineation.pdb"
  "test_delineation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delineation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
