# Empty compiler generated dependencies file for test_delineation.
# This may be replaced when dependencies are built.
