# Empty dependencies file for test_delineation.
# This may be replaced when dependencies are built.
