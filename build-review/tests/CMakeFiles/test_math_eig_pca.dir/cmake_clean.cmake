file(REMOVE_RECURSE
  "CMakeFiles/test_math_eig_pca.dir/test_math_eig_pca.cpp.o"
  "CMakeFiles/test_math_eig_pca.dir/test_math_eig_pca.cpp.o.d"
  "test_math_eig_pca"
  "test_math_eig_pca.pdb"
  "test_math_eig_pca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_eig_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
