# Empty dependencies file for test_math_eig_pca.
# This may be replaced when dependencies are built.
