# Empty dependencies file for test_dsp_wavelet.
# This may be replaced when dependencies are built.
