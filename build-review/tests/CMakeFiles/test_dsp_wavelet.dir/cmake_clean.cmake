file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_wavelet.dir/test_dsp_wavelet.cpp.o"
  "CMakeFiles/test_dsp_wavelet.dir/test_dsp_wavelet.cpp.o.d"
  "test_dsp_wavelet"
  "test_dsp_wavelet.pdb"
  "test_dsp_wavelet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
