# Empty dependencies file for test_mitdb_fuzz.
# This may be replaced when dependencies are built.
