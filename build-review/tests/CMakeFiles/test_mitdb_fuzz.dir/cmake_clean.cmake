file(REMOVE_RECURSE
  "CMakeFiles/test_mitdb_fuzz.dir/test_mitdb_fuzz.cpp.o"
  "CMakeFiles/test_mitdb_fuzz.dir/test_mitdb_fuzz.cpp.o.d"
  "test_mitdb_fuzz"
  "test_mitdb_fuzz.pdb"
  "test_mitdb_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mitdb_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
