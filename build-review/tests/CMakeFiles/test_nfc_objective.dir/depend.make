# Empty dependencies file for test_nfc_objective.
# This may be replaced when dependencies are built.
