file(REMOVE_RECURSE
  "CMakeFiles/test_nfc_objective.dir/test_nfc_objective.cpp.o"
  "CMakeFiles/test_nfc_objective.dir/test_nfc_objective.cpp.o.d"
  "test_nfc_objective"
  "test_nfc_objective.pdb"
  "test_nfc_objective[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nfc_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
