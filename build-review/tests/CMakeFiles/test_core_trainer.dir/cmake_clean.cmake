file(REMOVE_RECURSE
  "CMakeFiles/test_core_trainer.dir/test_core_trainer.cpp.o"
  "CMakeFiles/test_core_trainer.dir/test_core_trainer.cpp.o.d"
  "test_core_trainer"
  "test_core_trainer.pdb"
  "test_core_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
