file(REMOVE_RECURSE
  "CMakeFiles/test_opt_ga.dir/test_opt_ga.cpp.o"
  "CMakeFiles/test_opt_ga.dir/test_opt_ga.cpp.o.d"
  "test_opt_ga"
  "test_opt_ga.pdb"
  "test_opt_ga[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
