# Empty compiler generated dependencies file for test_opt_ga.
# This may be replaced when dependencies are built.
