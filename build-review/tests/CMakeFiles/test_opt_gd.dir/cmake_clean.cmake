file(REMOVE_RECURSE
  "CMakeFiles/test_opt_gd.dir/test_opt_gd.cpp.o"
  "CMakeFiles/test_opt_gd.dir/test_opt_gd.cpp.o.d"
  "test_opt_gd"
  "test_opt_gd.pdb"
  "test_opt_gd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_gd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
