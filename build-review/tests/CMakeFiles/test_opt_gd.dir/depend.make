# Empty dependencies file for test_opt_gd.
# This may be replaced when dependencies are built.
