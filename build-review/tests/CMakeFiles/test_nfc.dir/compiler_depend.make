# Empty compiler generated dependencies file for test_nfc.
# This may be replaced when dependencies are built.
