file(REMOVE_RECURSE
  "CMakeFiles/test_nfc.dir/test_nfc.cpp.o"
  "CMakeFiles/test_nfc.dir/test_nfc.cpp.o.d"
  "test_nfc"
  "test_nfc.pdb"
  "test_nfc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
