file(REMOVE_RECURSE
  "CMakeFiles/test_ecg_dataset.dir/test_ecg_dataset.cpp.o"
  "CMakeFiles/test_ecg_dataset.dir/test_ecg_dataset.cpp.o.d"
  "test_ecg_dataset"
  "test_ecg_dataset.pdb"
  "test_ecg_dataset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecg_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
