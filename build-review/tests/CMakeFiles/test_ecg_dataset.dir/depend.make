# Empty dependencies file for test_ecg_dataset.
# This may be replaced when dependencies are built.
