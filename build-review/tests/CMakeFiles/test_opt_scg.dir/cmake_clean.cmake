file(REMOVE_RECURSE
  "CMakeFiles/test_opt_scg.dir/test_opt_scg.cpp.o"
  "CMakeFiles/test_opt_scg.dir/test_opt_scg.cpp.o.d"
  "test_opt_scg"
  "test_opt_scg.pdb"
  "test_opt_scg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_scg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
