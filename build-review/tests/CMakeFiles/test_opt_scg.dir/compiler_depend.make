# Empty compiler generated dependencies file for test_opt_scg.
# This may be replaced when dependencies are built.
