file(REMOVE_RECURSE
  "CMakeFiles/test_math_vec_mat.dir/test_math_vec_mat.cpp.o"
  "CMakeFiles/test_math_vec_mat.dir/test_math_vec_mat.cpp.o.d"
  "test_math_vec_mat"
  "test_math_vec_mat.pdb"
  "test_math_vec_mat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_vec_mat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
