# Empty dependencies file for test_math_vec_mat.
# This may be replaced when dependencies are built.
