file(REMOVE_RECURSE
  "CMakeFiles/test_math_stats.dir/test_math_stats.cpp.o"
  "CMakeFiles/test_math_stats.dir/test_math_stats.cpp.o.d"
  "test_math_stats"
  "test_math_stats.pdb"
  "test_math_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
