# Empty compiler generated dependencies file for test_math_stats.
# This may be replaced when dependencies are built.
