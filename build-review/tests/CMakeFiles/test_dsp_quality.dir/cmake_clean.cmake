file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_quality.dir/test_dsp_quality.cpp.o"
  "CMakeFiles/test_dsp_quality.dir/test_dsp_quality.cpp.o.d"
  "test_dsp_quality"
  "test_dsp_quality.pdb"
  "test_dsp_quality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
