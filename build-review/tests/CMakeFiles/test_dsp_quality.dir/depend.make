# Empty dependencies file for test_dsp_quality.
# This may be replaced when dependencies are built.
