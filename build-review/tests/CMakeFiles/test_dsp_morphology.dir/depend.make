# Empty dependencies file for test_dsp_morphology.
# This may be replaced when dependencies are built.
