file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_morphology.dir/test_dsp_morphology.cpp.o"
  "CMakeFiles/test_dsp_morphology.dir/test_dsp_morphology.cpp.o.d"
  "test_dsp_morphology"
  "test_dsp_morphology.pdb"
  "test_dsp_morphology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_morphology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
