# Empty dependencies file for test_ecg_mitdb.
# This may be replaced when dependencies are built.
