file(REMOVE_RECURSE
  "CMakeFiles/test_ecg_mitdb.dir/test_ecg_mitdb.cpp.o"
  "CMakeFiles/test_ecg_mitdb.dir/test_ecg_mitdb.cpp.o.d"
  "test_ecg_mitdb"
  "test_ecg_mitdb.pdb"
  "test_ecg_mitdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecg_mitdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
