file(REMOVE_RECURSE
  "CMakeFiles/test_math_rng.dir/test_math_rng.cpp.o"
  "CMakeFiles/test_math_rng.dir/test_math_rng.cpp.o.d"
  "test_math_rng"
  "test_math_rng.pdb"
  "test_math_rng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
