# Empty compiler generated dependencies file for test_math_rng.
# This may be replaced when dependencies are built.
