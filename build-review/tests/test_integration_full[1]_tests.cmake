add_test([=[IntegrationFull.TrainPersistDeployClassify]=]  /root/repo/build-review/tests/test_integration_full [==[--gtest_filter=IntegrationFull.TrainPersistDeployClassify]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[IntegrationFull.TrainPersistDeployClassify]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-review/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_integration_full_TESTS IntegrationFull.TrainPersistDeployClassify)
