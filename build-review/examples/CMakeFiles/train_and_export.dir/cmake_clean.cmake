file(REMOVE_RECURSE
  "CMakeFiles/train_and_export.dir/train_and_export.cpp.o"
  "CMakeFiles/train_and_export.dir/train_and_export.cpp.o.d"
  "train_and_export"
  "train_and_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
