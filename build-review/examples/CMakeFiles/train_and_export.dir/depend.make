# Empty dependencies file for train_and_export.
# This may be replaced when dependencies are built.
