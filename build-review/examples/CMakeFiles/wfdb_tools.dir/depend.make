# Empty dependencies file for wfdb_tools.
# This may be replaced when dependencies are built.
