file(REMOVE_RECURSE
  "CMakeFiles/wfdb_tools.dir/wfdb_tools.cpp.o"
  "CMakeFiles/wfdb_tools.dir/wfdb_tools.cpp.o.d"
  "wfdb_tools"
  "wfdb_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfdb_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
