file(REMOVE_RECURSE
  "CMakeFiles/holter_monitor.dir/holter_monitor.cpp.o"
  "CMakeFiles/holter_monitor.dir/holter_monitor.cpp.o.d"
  "holter_monitor"
  "holter_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holter_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
