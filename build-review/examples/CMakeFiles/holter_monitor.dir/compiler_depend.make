# Empty compiler generated dependencies file for holter_monitor.
# This may be replaced when dependencies are built.
