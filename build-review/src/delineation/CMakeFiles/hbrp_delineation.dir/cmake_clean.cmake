file(REMOVE_RECURSE
  "CMakeFiles/hbrp_delineation.dir/mmd.cpp.o"
  "CMakeFiles/hbrp_delineation.dir/mmd.cpp.o.d"
  "libhbrp_delineation.a"
  "libhbrp_delineation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_delineation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
