file(REMOVE_RECURSE
  "libhbrp_delineation.a"
)
