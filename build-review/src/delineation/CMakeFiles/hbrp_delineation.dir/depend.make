# Empty dependencies file for hbrp_delineation.
# This may be replaced when dependencies are built.
