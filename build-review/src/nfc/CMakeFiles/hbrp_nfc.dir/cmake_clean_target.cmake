file(REMOVE_RECURSE
  "libhbrp_nfc.a"
)
