# Empty compiler generated dependencies file for hbrp_nfc.
# This may be replaced when dependencies are built.
