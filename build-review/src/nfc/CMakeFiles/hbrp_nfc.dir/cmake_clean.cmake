file(REMOVE_RECURSE
  "CMakeFiles/hbrp_nfc.dir/classifier.cpp.o"
  "CMakeFiles/hbrp_nfc.dir/classifier.cpp.o.d"
  "CMakeFiles/hbrp_nfc.dir/objective.cpp.o"
  "CMakeFiles/hbrp_nfc.dir/objective.cpp.o.d"
  "CMakeFiles/hbrp_nfc.dir/train.cpp.o"
  "CMakeFiles/hbrp_nfc.dir/train.cpp.o.d"
  "libhbrp_nfc.a"
  "libhbrp_nfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_nfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
