# Empty dependencies file for hbrp_opt.
# This may be replaced when dependencies are built.
