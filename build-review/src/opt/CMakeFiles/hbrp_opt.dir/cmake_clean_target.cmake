file(REMOVE_RECURSE
  "libhbrp_opt.a"
)
