file(REMOVE_RECURSE
  "CMakeFiles/hbrp_opt.dir/ga.cpp.o"
  "CMakeFiles/hbrp_opt.dir/ga.cpp.o.d"
  "CMakeFiles/hbrp_opt.dir/gd.cpp.o"
  "CMakeFiles/hbrp_opt.dir/gd.cpp.o.d"
  "CMakeFiles/hbrp_opt.dir/scg.cpp.o"
  "CMakeFiles/hbrp_opt.dir/scg.cpp.o.d"
  "libhbrp_opt.a"
  "libhbrp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
