file(REMOVE_RECURSE
  "libhbrp_platform.a"
)
