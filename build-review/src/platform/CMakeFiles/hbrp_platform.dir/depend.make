# Empty dependencies file for hbrp_platform.
# This may be replaced when dependencies are built.
