file(REMOVE_RECURSE
  "CMakeFiles/hbrp_platform.dir/codesize.cpp.o"
  "CMakeFiles/hbrp_platform.dir/codesize.cpp.o.d"
  "CMakeFiles/hbrp_platform.dir/cycles.cpp.o"
  "CMakeFiles/hbrp_platform.dir/cycles.cpp.o.d"
  "CMakeFiles/hbrp_platform.dir/energy.cpp.o"
  "CMakeFiles/hbrp_platform.dir/energy.cpp.o.d"
  "CMakeFiles/hbrp_platform.dir/icyheart.cpp.o"
  "CMakeFiles/hbrp_platform.dir/icyheart.cpp.o.d"
  "libhbrp_platform.a"
  "libhbrp_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
