
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/codesize.cpp" "src/platform/CMakeFiles/hbrp_platform.dir/codesize.cpp.o" "gcc" "src/platform/CMakeFiles/hbrp_platform.dir/codesize.cpp.o.d"
  "/root/repo/src/platform/cycles.cpp" "src/platform/CMakeFiles/hbrp_platform.dir/cycles.cpp.o" "gcc" "src/platform/CMakeFiles/hbrp_platform.dir/cycles.cpp.o.d"
  "/root/repo/src/platform/energy.cpp" "src/platform/CMakeFiles/hbrp_platform.dir/energy.cpp.o" "gcc" "src/platform/CMakeFiles/hbrp_platform.dir/energy.cpp.o.d"
  "/root/repo/src/platform/icyheart.cpp" "src/platform/CMakeFiles/hbrp_platform.dir/icyheart.cpp.o" "gcc" "src/platform/CMakeFiles/hbrp_platform.dir/icyheart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/dsp/CMakeFiles/hbrp_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/math/CMakeFiles/hbrp_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
