
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rp/achlioptas.cpp" "src/rp/CMakeFiles/hbrp_rp.dir/achlioptas.cpp.o" "gcc" "src/rp/CMakeFiles/hbrp_rp.dir/achlioptas.cpp.o.d"
  "/root/repo/src/rp/packed_matrix.cpp" "src/rp/CMakeFiles/hbrp_rp.dir/packed_matrix.cpp.o" "gcc" "src/rp/CMakeFiles/hbrp_rp.dir/packed_matrix.cpp.o.d"
  "/root/repo/src/rp/projector.cpp" "src/rp/CMakeFiles/hbrp_rp.dir/projector.cpp.o" "gcc" "src/rp/CMakeFiles/hbrp_rp.dir/projector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/math/CMakeFiles/hbrp_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/hbrp_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
