# Empty compiler generated dependencies file for hbrp_rp.
# This may be replaced when dependencies are built.
