file(REMOVE_RECURSE
  "libhbrp_rp.a"
)
