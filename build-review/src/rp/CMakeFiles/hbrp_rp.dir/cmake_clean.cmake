file(REMOVE_RECURSE
  "CMakeFiles/hbrp_rp.dir/achlioptas.cpp.o"
  "CMakeFiles/hbrp_rp.dir/achlioptas.cpp.o.d"
  "CMakeFiles/hbrp_rp.dir/packed_matrix.cpp.o"
  "CMakeFiles/hbrp_rp.dir/packed_matrix.cpp.o.d"
  "CMakeFiles/hbrp_rp.dir/projector.cpp.o"
  "CMakeFiles/hbrp_rp.dir/projector.cpp.o.d"
  "libhbrp_rp.a"
  "libhbrp_rp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_rp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
