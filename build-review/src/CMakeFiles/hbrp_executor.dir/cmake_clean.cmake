file(REMOVE_RECURSE
  "CMakeFiles/hbrp_executor.dir/core/executor.cpp.o"
  "CMakeFiles/hbrp_executor.dir/core/executor.cpp.o.d"
  "libhbrp_executor.a"
  "libhbrp_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
