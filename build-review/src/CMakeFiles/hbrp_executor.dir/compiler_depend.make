# Empty compiler generated dependencies file for hbrp_executor.
# This may be replaced when dependencies are built.
