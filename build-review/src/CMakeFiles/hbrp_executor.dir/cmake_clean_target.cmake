file(REMOVE_RECURSE
  "libhbrp_executor.a"
)
