file(REMOVE_RECURSE
  "libhbrp_ecg.a"
)
