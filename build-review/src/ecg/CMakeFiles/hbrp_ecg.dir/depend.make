# Empty dependencies file for hbrp_ecg.
# This may be replaced when dependencies are built.
