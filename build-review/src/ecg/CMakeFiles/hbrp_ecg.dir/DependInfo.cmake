
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecg/dataset.cpp" "src/ecg/CMakeFiles/hbrp_ecg.dir/dataset.cpp.o" "gcc" "src/ecg/CMakeFiles/hbrp_ecg.dir/dataset.cpp.o.d"
  "/root/repo/src/ecg/mitdb.cpp" "src/ecg/CMakeFiles/hbrp_ecg.dir/mitdb.cpp.o" "gcc" "src/ecg/CMakeFiles/hbrp_ecg.dir/mitdb.cpp.o.d"
  "/root/repo/src/ecg/morphology.cpp" "src/ecg/CMakeFiles/hbrp_ecg.dir/morphology.cpp.o" "gcc" "src/ecg/CMakeFiles/hbrp_ecg.dir/morphology.cpp.o.d"
  "/root/repo/src/ecg/synth.cpp" "src/ecg/CMakeFiles/hbrp_ecg.dir/synth.cpp.o" "gcc" "src/ecg/CMakeFiles/hbrp_ecg.dir/synth.cpp.o.d"
  "/root/repo/src/ecg/types.cpp" "src/ecg/CMakeFiles/hbrp_ecg.dir/types.cpp.o" "gcc" "src/ecg/CMakeFiles/hbrp_ecg.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/math/CMakeFiles/hbrp_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/hbrp_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
