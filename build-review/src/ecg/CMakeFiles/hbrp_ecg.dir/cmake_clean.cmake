file(REMOVE_RECURSE
  "CMakeFiles/hbrp_ecg.dir/dataset.cpp.o"
  "CMakeFiles/hbrp_ecg.dir/dataset.cpp.o.d"
  "CMakeFiles/hbrp_ecg.dir/mitdb.cpp.o"
  "CMakeFiles/hbrp_ecg.dir/mitdb.cpp.o.d"
  "CMakeFiles/hbrp_ecg.dir/morphology.cpp.o"
  "CMakeFiles/hbrp_ecg.dir/morphology.cpp.o.d"
  "CMakeFiles/hbrp_ecg.dir/synth.cpp.o"
  "CMakeFiles/hbrp_ecg.dir/synth.cpp.o.d"
  "CMakeFiles/hbrp_ecg.dir/types.cpp.o"
  "CMakeFiles/hbrp_ecg.dir/types.cpp.o.d"
  "libhbrp_ecg.a"
  "libhbrp_ecg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_ecg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
