file(REMOVE_RECURSE
  "libhbrp_math.a"
)
