# Empty compiler generated dependencies file for hbrp_math.
# This may be replaced when dependencies are built.
