file(REMOVE_RECURSE
  "CMakeFiles/hbrp_math.dir/crc32.cpp.o"
  "CMakeFiles/hbrp_math.dir/crc32.cpp.o.d"
  "CMakeFiles/hbrp_math.dir/eig.cpp.o"
  "CMakeFiles/hbrp_math.dir/eig.cpp.o.d"
  "CMakeFiles/hbrp_math.dir/mat.cpp.o"
  "CMakeFiles/hbrp_math.dir/mat.cpp.o.d"
  "CMakeFiles/hbrp_math.dir/pca.cpp.o"
  "CMakeFiles/hbrp_math.dir/pca.cpp.o.d"
  "CMakeFiles/hbrp_math.dir/rng.cpp.o"
  "CMakeFiles/hbrp_math.dir/rng.cpp.o.d"
  "CMakeFiles/hbrp_math.dir/stats.cpp.o"
  "CMakeFiles/hbrp_math.dir/stats.cpp.o.d"
  "CMakeFiles/hbrp_math.dir/vec.cpp.o"
  "CMakeFiles/hbrp_math.dir/vec.cpp.o.d"
  "libhbrp_math.a"
  "libhbrp_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
