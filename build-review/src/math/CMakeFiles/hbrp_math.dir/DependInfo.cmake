
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/crc32.cpp" "src/math/CMakeFiles/hbrp_math.dir/crc32.cpp.o" "gcc" "src/math/CMakeFiles/hbrp_math.dir/crc32.cpp.o.d"
  "/root/repo/src/math/eig.cpp" "src/math/CMakeFiles/hbrp_math.dir/eig.cpp.o" "gcc" "src/math/CMakeFiles/hbrp_math.dir/eig.cpp.o.d"
  "/root/repo/src/math/mat.cpp" "src/math/CMakeFiles/hbrp_math.dir/mat.cpp.o" "gcc" "src/math/CMakeFiles/hbrp_math.dir/mat.cpp.o.d"
  "/root/repo/src/math/pca.cpp" "src/math/CMakeFiles/hbrp_math.dir/pca.cpp.o" "gcc" "src/math/CMakeFiles/hbrp_math.dir/pca.cpp.o.d"
  "/root/repo/src/math/rng.cpp" "src/math/CMakeFiles/hbrp_math.dir/rng.cpp.o" "gcc" "src/math/CMakeFiles/hbrp_math.dir/rng.cpp.o.d"
  "/root/repo/src/math/stats.cpp" "src/math/CMakeFiles/hbrp_math.dir/stats.cpp.o" "gcc" "src/math/CMakeFiles/hbrp_math.dir/stats.cpp.o.d"
  "/root/repo/src/math/vec.cpp" "src/math/CMakeFiles/hbrp_math.dir/vec.cpp.o" "gcc" "src/math/CMakeFiles/hbrp_math.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
