# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("math")
subdirs("dsp")
subdirs("ecg")
subdirs("rp")
subdirs("nfc")
subdirs("opt")
subdirs("embedded")
subdirs("delineation")
subdirs("platform")
subdirs("core")
subdirs("testing")
