# Empty dependencies file for hbrp_dsp.
# This may be replaced when dependencies are built.
