file(REMOVE_RECURSE
  "libhbrp_dsp.a"
)
