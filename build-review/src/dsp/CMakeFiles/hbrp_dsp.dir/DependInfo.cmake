
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/morphology.cpp" "src/dsp/CMakeFiles/hbrp_dsp.dir/morphology.cpp.o" "gcc" "src/dsp/CMakeFiles/hbrp_dsp.dir/morphology.cpp.o.d"
  "/root/repo/src/dsp/peak_detect.cpp" "src/dsp/CMakeFiles/hbrp_dsp.dir/peak_detect.cpp.o" "gcc" "src/dsp/CMakeFiles/hbrp_dsp.dir/peak_detect.cpp.o.d"
  "/root/repo/src/dsp/quality.cpp" "src/dsp/CMakeFiles/hbrp_dsp.dir/quality.cpp.o" "gcc" "src/dsp/CMakeFiles/hbrp_dsp.dir/quality.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/dsp/CMakeFiles/hbrp_dsp.dir/resample.cpp.o" "gcc" "src/dsp/CMakeFiles/hbrp_dsp.dir/resample.cpp.o.d"
  "/root/repo/src/dsp/streaming.cpp" "src/dsp/CMakeFiles/hbrp_dsp.dir/streaming.cpp.o" "gcc" "src/dsp/CMakeFiles/hbrp_dsp.dir/streaming.cpp.o.d"
  "/root/repo/src/dsp/wavelet.cpp" "src/dsp/CMakeFiles/hbrp_dsp.dir/wavelet.cpp.o" "gcc" "src/dsp/CMakeFiles/hbrp_dsp.dir/wavelet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/math/CMakeFiles/hbrp_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
