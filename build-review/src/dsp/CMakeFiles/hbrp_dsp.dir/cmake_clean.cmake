file(REMOVE_RECURSE
  "CMakeFiles/hbrp_dsp.dir/morphology.cpp.o"
  "CMakeFiles/hbrp_dsp.dir/morphology.cpp.o.d"
  "CMakeFiles/hbrp_dsp.dir/peak_detect.cpp.o"
  "CMakeFiles/hbrp_dsp.dir/peak_detect.cpp.o.d"
  "CMakeFiles/hbrp_dsp.dir/quality.cpp.o"
  "CMakeFiles/hbrp_dsp.dir/quality.cpp.o.d"
  "CMakeFiles/hbrp_dsp.dir/resample.cpp.o"
  "CMakeFiles/hbrp_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/hbrp_dsp.dir/streaming.cpp.o"
  "CMakeFiles/hbrp_dsp.dir/streaming.cpp.o.d"
  "CMakeFiles/hbrp_dsp.dir/wavelet.cpp.o"
  "CMakeFiles/hbrp_dsp.dir/wavelet.cpp.o.d"
  "libhbrp_dsp.a"
  "libhbrp_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
