file(REMOVE_RECURSE
  "libhbrp_testing.a"
)
