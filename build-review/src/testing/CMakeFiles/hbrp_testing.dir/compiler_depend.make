# Empty compiler generated dependencies file for hbrp_testing.
# This may be replaced when dependencies are built.
