file(REMOVE_RECURSE
  "CMakeFiles/hbrp_testing.dir/fault_inject.cpp.o"
  "CMakeFiles/hbrp_testing.dir/fault_inject.cpp.o.d"
  "libhbrp_testing.a"
  "libhbrp_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
