file(REMOVE_RECURSE
  "libhbrp_embedded.a"
)
