# Empty compiler generated dependencies file for hbrp_embedded.
# This may be replaced when dependencies are built.
