file(REMOVE_RECURSE
  "CMakeFiles/hbrp_embedded.dir/bundle.cpp.o"
  "CMakeFiles/hbrp_embedded.dir/bundle.cpp.o.d"
  "CMakeFiles/hbrp_embedded.dir/int_classifier.cpp.o"
  "CMakeFiles/hbrp_embedded.dir/int_classifier.cpp.o.d"
  "CMakeFiles/hbrp_embedded.dir/linear_mf.cpp.o"
  "CMakeFiles/hbrp_embedded.dir/linear_mf.cpp.o.d"
  "libhbrp_embedded.a"
  "libhbrp_embedded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_embedded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
