# CMake generated Testfile for 
# Source directory: /root/repo/src/embedded
# Build directory: /root/repo/build-review/src/embedded
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
