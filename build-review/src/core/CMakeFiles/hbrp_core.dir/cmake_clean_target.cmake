file(REMOVE_RECURSE
  "libhbrp_core.a"
)
