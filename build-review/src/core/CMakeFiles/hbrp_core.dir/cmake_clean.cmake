file(REMOVE_RECURSE
  "CMakeFiles/hbrp_core.dir/batch.cpp.o"
  "CMakeFiles/hbrp_core.dir/batch.cpp.o.d"
  "CMakeFiles/hbrp_core.dir/metrics.cpp.o"
  "CMakeFiles/hbrp_core.dir/metrics.cpp.o.d"
  "CMakeFiles/hbrp_core.dir/model_io.cpp.o"
  "CMakeFiles/hbrp_core.dir/model_io.cpp.o.d"
  "CMakeFiles/hbrp_core.dir/pca_baseline.cpp.o"
  "CMakeFiles/hbrp_core.dir/pca_baseline.cpp.o.d"
  "CMakeFiles/hbrp_core.dir/pipeline.cpp.o"
  "CMakeFiles/hbrp_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/hbrp_core.dir/streaming.cpp.o"
  "CMakeFiles/hbrp_core.dir/streaming.cpp.o.d"
  "CMakeFiles/hbrp_core.dir/trainer.cpp.o"
  "CMakeFiles/hbrp_core.dir/trainer.cpp.o.d"
  "libhbrp_core.a"
  "libhbrp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbrp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
