# Empty dependencies file for hbrp_core.
# This may be replaced when dependencies are built.
